//! The serving loop: serial admission, cross-tenant batching, tiered
//! execution, billing, and crash-safe response journaling.
//!
//! # Determinism
//!
//! The whole decision surface — admissions, tiers, answers, bills, the
//! decision log — is identical at any [`Parallelism`]. The invariants
//! that make it so:
//!
//! * arrivals are processed in the total order of
//!   [`crate::Workload::into_sorted`], and every admission/shed decision
//!   happens in that serial loop;
//! * batches execute against a *frozen* service clock. The executor's
//!   accounting clock (which [`nbhd_client::send_resilient`] advances by
//!   per-attempt latency) is a private scratch clock; the service paces
//!   its own clock explicitly — up to each arrival time, then by a fixed
//!   service time per batch — so fault regimes and breaker cooldowns see
//!   the same timestamps regardless of worker interleaving;
//! * fault draws inside a batch are keyed by image and regime window
//!   ([`nbhd_client::DrawKeying::PerImage`]), not by a racing attempt
//!   counter;
//! * circuit breakers are probed once per batch and fed results in
//!   request order, after the (order-preserving) executor returns.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use nbhd_client::{
    BatchExecutor, BreakerConfig, CircuitBreaker, CostMeter, ExecutorConfig, FaultSchedule,
    HealthReport, ModelHealth, ModelRequest, ModelResponse, Parallelism, RetryPolicy,
    ScheduledTransport, SimulatedTransport, TokenBucket, Transport, TransportError, VirtualClock,
};
use nbhd_eval::{quorum_vote, QuorumPolicy, VoteFallback};
use nbhd_journal::CheckpointStore;
use nbhd_obs::{MetricsRegistry, MetricsSnapshot, Obs, RunArtifact, ARTIFACT_SCHEMA_VERSION};
use nbhd_prompt::{parse_response, Language, Prompt, PromptMode};
use nbhd_types::rng::child_seed_n;
use nbhd_types::{Error, IndicatorSet, Result};
use nbhd_vlm::{
    chatgpt_4o_mini, claude_37, gemini_15_pro, grok_2, ImageContext, ModelProfile, SamplerParams,
    VisionModel,
};
use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionController, Rejected, TenantGate};
use crate::detector::EvidenceDetector;
use crate::storm::{Arrival, Workload};
use crate::tenant::{TenantBill, TenantConfig};
use crate::tiers::{tier_ceiling, DegradePolicy, ServiceProvenance, ServiceTier};

/// Journal record kind for served responses.
pub const RESPONSE_RECORD_KIND: &str = "serve-response";

/// The durable record of one served response: enough to replay the
/// answer *and* the bill on resume without re-querying any model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResponseRecord {
    bits: u8,
    tier: String,
    input_tokens: u64,
    output_tokens: u64,
    usd: f64,
    wait_ms: u64,
}

/// The idempotency key for one tenant request.
fn response_key(tenant: &str, request_id: u64) -> String {
    format!("{tenant}#{request_id}")
}

/// Service-wide configuration: the model panel, resilience knobs, batch
/// shape, and degradation policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The model panel as `(profile, voting)` pairs, preference order
    /// first (ties in ranked votes side with earlier voters).
    pub models: Vec<(ModelProfile, bool)>,
    /// Seed for scene ground truth, model behavior, and fault draws.
    pub survey_seed: u64,
    /// Vote policy for ensemble-tier answers.
    pub quorum: QuorumPolicy,
    /// Per-member circuit-breaker configuration.
    pub breaker: BreakerConfig,
    /// Fault regimes raging during the run; empty for a calm service.
    pub schedule: FaultSchedule,
    /// Worker threads per batch fan-out. Changes wall-clock only: the
    /// decision surface is identical at any value.
    pub parallelism: Parallelism,
    /// Requests per batch; a batch fires whenever this many are queued
    /// (and at drain time for the remainder).
    pub batch_size: usize,
    /// Global cap on queued requests across all tenants; beyond it the
    /// admission controller sheds with [`Rejected::Degraded`].
    pub global_queue_capacity: usize,
    /// Queue-depth thresholds for tier degradation.
    pub degrade: DegradePolicy,
    /// The detector answering bottom-tier requests.
    pub detector: EvidenceDetector,
    /// Virtual milliseconds one ensemble batch occupies the service.
    pub batch_service_ms: u64,
    /// Virtual milliseconds one detector-only batch occupies the service.
    pub detector_service_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            models: vec![
                (chatgpt_4o_mini(), false),
                (gemini_15_pro(), true),
                (claude_37(), true),
                (grok_2(), true),
            ],
            survey_seed: 0,
            quorum: QuorumPolicy::default(),
            breaker: BreakerConfig::default(),
            schedule: FaultSchedule::new(),
            parallelism: Parallelism::fixed(4),
            batch_size: 8,
            global_queue_capacity: 48,
            degrade: DegradePolicy::default(),
            detector: EvidenceDetector::default(),
            batch_service_ms: 1_500,
            detector_service_ms: 100,
        }
    }
}

/// One panel member: its transport stack and service-level breaker.
#[derive(Debug)]
struct ServeMember {
    profile: ModelProfile,
    transport: Arc<dyn Transport>,
    base: Arc<SimulatedTransport>,
    breaker: CircuitBreaker,
    voting: bool,
}

/// An admitted request waiting for a batch.
#[derive(Debug, Clone)]
struct QueuedRequest {
    tenant: String,
    request_id: u64,
    arrival_ms: u64,
    deadline_ms: u64,
    context: ImageContext,
}

/// One tenant's live state: quota bucket, bounded queue, ledger.
#[derive(Debug)]
struct TenantState {
    config: TenantConfig,
    bucket: TokenBucket,
    queue: VecDeque<QueuedRequest>,
    bill: TenantBill,
    meter: Arc<CostMeter>,
    /// High-water mark of this tenant's queue, maintained in the serial
    /// admission loop and published as the end-of-run gauge
    /// `serve.tenant.<name>.queue_depth.peak`.
    peak_queue_depth: usize,
}

/// One served answer with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResponse {
    /// The tenant that submitted the request.
    pub tenant: String,
    /// The tenant-scoped request id.
    pub request_id: u64,
    /// The predicted indicator presence.
    pub presence: IndicatorSet,
    /// How the answer was produced.
    pub provenance: ServiceProvenance,
}

/// One rejected request with its typed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// The tenant that submitted the request.
    pub tenant: String,
    /// The tenant-scoped request id.
    pub request_id: u64,
    /// Why the request was turned away.
    pub reason: Rejected,
}

/// Everything one service run produced: responses, typed rejections, the
/// serial decision log, per-tenant bills, and ensemble health.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Served responses, in serving order (replays at arrival order).
    pub responses: Vec<ServiceResponse>,
    /// Rejected requests, in arrival order.
    pub rejections: Vec<Rejection>,
    /// One line per admission/batch/serve decision, in decision order.
    pub decision_log: Vec<String>,
    /// Per-tenant ledgers, keyed by tenant name.
    pub bills: BTreeMap<String, TenantBill>,
    /// Per-model health at end of run.
    pub health: HealthReport,
}

impl RunReport {
    /// The decision log as one newline-terminated text blob — the
    /// deterministic surface pinned by the overload drill.
    pub fn decision_text(&self) -> String {
        let mut text = self.decision_log.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        text
    }

    /// How many responses each tier served.
    pub fn tier_counts(&self) -> BTreeMap<ServiceTier, usize> {
        let mut counts = BTreeMap::new();
        for response in &self.responses {
            *counts.entry(response.provenance.tier).or_insert(0) += 1;
        }
        counts
    }
}

/// What one batch slot resolved to, before billing.
struct Served {
    presence: IndicatorSet,
    tier: ServiceTier,
    fallback: Option<VoteFallback>,
    deadline_blown: bool,
    input_tokens: u64,
    output_tokens: u64,
    usd: f64,
    lines: Vec<BillingLine>,
}

/// One queried model's contribution to a response's bill.
struct BillingLine {
    model: String,
    input: u64,
    output: u64,
    p_in: f64,
    p_out: f64,
    latency: f64,
}

/// Mutable run-scoped output being accumulated.
struct RunState {
    responses: Vec<ServiceResponse>,
    rejections: Vec<Rejection>,
    log: Vec<String>,
}

/// The long-running multi-tenant survey service.
///
/// Drive it with [`SurveyService::run`] over a [`Workload`]; every
/// arrival is either served through some [`ServiceTier`] or rejected with
/// a typed [`Rejected`] — the service never queues unboundedly and never
/// drops a request silently.
#[derive(Debug)]
pub struct SurveyService {
    config: ServiceConfig,
    admission: AdmissionController,
    members: Vec<ServeMember>,
    tenants: BTreeMap<String, TenantState>,
    obs: Obs,
    /// Private clock fed to executors so per-attempt latency accounting
    /// never advances the service's own (frozen-during-batch) clock.
    scratch: Arc<VirtualClock>,
    meter: Arc<CostMeter>,
    checkpoint: Option<Arc<dyn CheckpointStore>>,
    prompt: Prompt,
    params: SamplerParams,
    batches: u64,
}

impl SurveyService {
    /// A service with a fresh, unattached [`Obs`] bundle.
    pub fn new(config: ServiceConfig, tenants: Vec<TenantConfig>) -> SurveyService {
        SurveyService::assemble(config, tenants, Obs::new())
    }

    /// Rebuilds the service around a shared observability bundle (clock,
    /// metrics, tracer). Call before [`SurveyService::run`]: member
    /// transports and quota buckets are rebound to the new clock.
    #[must_use]
    pub fn with_obs(self, obs: Obs) -> SurveyService {
        let checkpoint = self.checkpoint.clone();
        let tenants = self.tenants.into_values().map(|t| t.config).collect();
        let mut service = SurveyService::assemble(self.config, tenants, obs);
        service.checkpoint = checkpoint;
        service
    }

    /// Journals served responses through `store` (save-before-act), so a
    /// killed run resumes without re-querying or double-billing.
    #[must_use]
    pub fn with_checkpoint(mut self, store: Arc<dyn CheckpointStore>) -> SurveyService {
        self.checkpoint = Some(store);
        self
    }

    fn assemble(config: ServiceConfig, tenants: Vec<TenantConfig>, obs: Obs) -> SurveyService {
        let clock = Arc::clone(obs.clock());
        let members = config
            .models
            .iter()
            .enumerate()
            .map(|(index, (profile, voting))| {
                let model = VisionModel::new(profile.clone(), config.survey_seed);
                let base = Arc::new(SimulatedTransport::new(
                    model,
                    config.survey_seed ^ (index as u64 + 1),
                ));
                let transport: Arc<dyn Transport> = if config.schedule.regimes().is_empty() {
                    Arc::clone(&base) as Arc<dyn Transport>
                } else {
                    Arc::new(
                        ScheduledTransport::new(
                            Arc::clone(&base) as Arc<dyn Transport>,
                            config.schedule.clone(),
                            Arc::clone(&clock),
                            child_seed_n(config.survey_seed, "serve-schedule", index as u64),
                        )
                        .with_image_keyed_draws(),
                    )
                };
                ServeMember {
                    profile: profile.clone(),
                    transport,
                    base,
                    breaker: CircuitBreaker::new(config.breaker, Arc::clone(&clock)),
                    voting: *voting,
                }
            })
            .collect();
        let tenants = tenants
            .into_iter()
            .map(|t| {
                let bucket = TokenBucket::new(t.quota_burst, t.quota_per_sec, Arc::clone(&clock));
                (
                    t.name.clone(),
                    TenantState {
                        bucket,
                        queue: VecDeque::new(),
                        bill: TenantBill::default(),
                        meter: Arc::new(CostMeter::new()),
                        peak_queue_depth: 0,
                        config: t,
                    },
                )
            })
            .collect();
        SurveyService {
            admission: AdmissionController::new(config.global_queue_capacity),
            members,
            tenants,
            obs,
            scratch: Arc::new(VirtualClock::new()),
            meter: Arc::new(CostMeter::new()),
            checkpoint: None,
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: SamplerParams::default(),
            batches: 0,
            config,
        }
    }

    /// The service's observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The service-wide cost meter (every queried model, all tenants).
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// One tenant's own cost meter — the per-model ledger fed by exactly
    /// the billing lines on that tenant's bill — or `None` for an unknown
    /// tenant. Both sides price through
    /// [`nbhd_client::token_cost_usd`], so the meter's total matches the
    /// bill's USD (up to float summation order).
    pub fn tenant_meter(&self, tenant: &str) -> Option<Arc<CostMeter>> {
        self.tenants.get(tenant).map(|t| Arc::clone(&t.meter))
    }

    /// Exports one tenant's slice of the service observability as a
    /// standalone [`RunArtifact`] named `serve-tenant-<name>`, or `None`
    /// for an unknown tenant.
    ///
    /// The artifact carries every metric in the tenant's namespace —
    /// `serve.tenant.<name>.{admitted, rejected.*, replayed, tier.*}`
    /// counters, the `serve.tenant.<name>.wait_ms` histogram, and (after
    /// [`SurveyService::run`] returns) the `.queue_depth.peak` and
    /// `.usd` gauges — under their full names, so a per-tenant
    /// [`crate::SloSpec`] evaluates against it with the same budget
    /// engine that gates whole runs. Every value is maintained in the
    /// serial admission/finalize loop, so the artifact is byte-identical
    /// at any worker count.
    pub fn tenant_artifact(&self, tenant: &str) -> Option<RunArtifact> {
        if !self.tenants.contains_key(tenant) {
            return None;
        }
        fn scoped<V: Clone>(map: &BTreeMap<String, V>, prefix: &str) -> BTreeMap<String, V> {
            map.iter()
                .filter(|(name, _)| name.starts_with(prefix))
                .map(|(name, value)| (name.clone(), value.clone()))
                .collect()
        }
        let prefix = format!("serve.tenant.{tenant}.");
        let snapshot = self.obs.registry().snapshot();
        Some(RunArtifact {
            schema_version: ARTIFACT_SCHEMA_VERSION,
            name: format!("serve-tenant-{tenant}"),
            spans: Vec::new(),
            metrics: MetricsSnapshot {
                counters: scoped(&snapshot.counters, &prefix),
                wall_counters: scoped(&snapshot.wall_counters, &prefix),
                gauges: scoped(&snapshot.gauges, &prefix),
                histograms: scoped(&snapshot.histograms, &prefix),
                wall_histograms: scoped(&snapshot.wall_histograms, &prefix),
            },
            shard: None,
            coverage: None,
        })
    }

    /// Raw attempts that reached a model's base transport — zero when
    /// every response was replayed from the journal.
    pub fn api_attempts(&self, model: &str) -> u64 {
        self.members
            .iter()
            .filter(|m| m.profile.name == model)
            .map(|m| m.base.attempts())
            .sum()
    }

    /// Per-model health: usage counters plus breaker snapshots.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            models: self
                .members
                .iter()
                .map(|m| ModelHealth {
                    model: m.profile.name.clone(),
                    usage: self.meter.usage(&m.profile.name).unwrap_or_default(),
                    breaker: m.breaker.snapshot(),
                })
                .collect(),
        }
    }

    fn total_queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Runs the workload to completion: every arrival is admitted and
    /// eventually served through some tier, or rejected with a typed
    /// reason. Batches fire whenever [`ServiceConfig::batch_size`]
    /// requests are queued, and the queue is drained at the end.
    ///
    /// # Errors
    ///
    /// Returns an error on journal I/O failure (including scheduled
    /// crash points), corrupt journal payloads, or a workload naming an
    /// unknown tenant.
    pub fn run(&mut self, workload: Workload) -> Result<RunReport> {
        let obs = self.obs.clone();
        let stage = obs.tracer().enter("serve");
        let batch_size = self.config.batch_size.max(1);
        let mut state = RunState {
            responses: Vec::new(),
            rejections: Vec::new(),
            log: Vec::new(),
        };
        for arrival in workload.into_sorted() {
            let now = obs.clock().now_ms();
            if arrival.at_ms > now {
                obs.clock().advance_ms(arrival.at_ms - now);
            }
            self.handle_arrival(arrival, &mut state)?;
            while self.total_queued() >= batch_size {
                self.run_batch(&mut state)?;
            }
        }
        while self.total_queued() > 0 {
            self.run_batch(&mut state)?;
        }
        stage.record();
        self.meter.publish(obs.registry());
        self.publish_breakers(obs.registry());
        self.publish_tenants(obs.registry());
        Ok(RunReport {
            responses: state.responses,
            rejections: state.rejections,
            decision_log: state.log,
            bills: self
                .tenants
                .iter()
                .map(|(name, t)| (name.clone(), t.bill))
                .collect(),
            health: self.health_report(),
        })
    }

    /// Decides one arrival: journal replay, admission, or typed
    /// rejection.
    fn handle_arrival(&mut self, arrival: Arrival, state: &mut RunState) -> Result<()> {
        let registry = Arc::clone(self.obs.registry());
        let now = self.obs.clock().now_ms();
        let Arrival {
            tenant,
            request_id,
            context,
            ..
        } = arrival;

        // Replay check runs before admission: a journaled response burns
        // no quota and bills exactly once, from the record.
        if let Some(store) = &self.checkpoint {
            if let Some(value) =
                store.load(RESPONSE_RECORD_KIND, &response_key(&tenant, request_id))
            {
                let record: ResponseRecord = serde_json::from_value(value)
                    .map_err(|e| Error::parse(format!("serve response record: {e}")))?;
                let tier = ServiceTier::parse(&record.tier)
                    .ok_or_else(|| Error::parse(format!("unknown service tier {}", record.tier)))?;
                let t = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| Error::config(format!("unknown tenant {tenant}")))?;
                t.bill.served += 1;
                t.bill.replayed += 1;
                t.bill.input_tokens += record.input_tokens;
                t.bill.output_tokens += record.output_tokens;
                t.bill.usd += record.usd;
                t.meter.record_success(
                    "replayed",
                    record.input_tokens,
                    record.output_tokens,
                    0.0,
                    0.0,
                    0.0,
                    1,
                );
                registry.add("serve.replayed", 1);
                registry.add(&format!("serve.tenant.{tenant}.replayed"), 1);
                state.log.push(format!(
                    "[t={now}ms] {tenant}#{request_id} replayed tier={tier}"
                ));
                state.responses.push(ServiceResponse {
                    tenant,
                    request_id,
                    presence: IndicatorSet::from_bits(record.bits),
                    provenance: ServiceProvenance {
                        tier,
                        batch: 0,
                        queried: Vec::new(),
                        fallback: None,
                        replayed: true,
                        wait_ms: record.wait_ms,
                        deadline_blown: false,
                    },
                });
                return Ok(());
            }
        }

        let total = self.total_queued();
        registry.record_hist("serve.queue_depth", total as u64);
        let admission = self.admission;
        let tenant_state = self
            .tenants
            .get_mut(&tenant)
            .ok_or_else(|| Error::config(format!("unknown tenant {tenant}")))?;
        let gate = TenantGate {
            queue_depth: tenant_state.queue.len(),
            queue_capacity: tenant_state.config.queue_capacity,
            spent_usd: tenant_state.bill.usd,
            budget_usd: tenant_state.config.budget_usd,
        };
        match admission.admit(&gate, &tenant_state.bucket, total) {
            Ok(()) => {
                tenant_state.bill.admitted += 1;
                let deadline_ms = now.saturating_add(tenant_state.config.deadline_ms);
                let depth = tenant_state.queue.len() + 1;
                let capacity = tenant_state.config.queue_capacity;
                tenant_state.queue.push_back(QueuedRequest {
                    tenant: tenant.clone(),
                    request_id,
                    arrival_ms: now,
                    deadline_ms,
                    context,
                });
                tenant_state.peak_queue_depth = tenant_state.peak_queue_depth.max(depth);
                registry.add("serve.admitted", 1);
                registry.add(&format!("serve.tenant.{tenant}.admitted"), 1);
                state.log.push(format!(
                    "[t={now}ms] {tenant}#{request_id} admitted (queue {depth}/{capacity}, global {}/{})",
                    total + 1,
                    admission.global_capacity()
                ));
            }
            Err(reason) => {
                tenant_state.bill.rejected += 1;
                let cause = match &reason {
                    Rejected::QueueFull { .. } => "queue_full",
                    Rejected::QuotaExhausted { .. } => "quota",
                    Rejected::BudgetExhausted => "budget",
                    Rejected::Degraded { .. } => "shed",
                };
                registry.add(&format!("serve.rejected.{cause}"), 1);
                registry.add(&format!("serve.tenant.{tenant}.rejected.{cause}"), 1);
                state.log.push(format!(
                    "[t={now}ms] {tenant}#{request_id} rejected: {reason}"
                ));
                state.rejections.push(Rejection {
                    tenant,
                    request_id,
                    reason,
                });
            }
        }
        Ok(())
    }

    /// Executes one batch: picks requests round-robin across tenants,
    /// chooses the tier from live signals, fans out, votes, bills.
    fn run_batch(&mut self, state: &mut RunState) -> Result<()> {
        let obs = self.obs.clone();
        let registry = Arc::clone(obs.registry());
        let depth_before = self.total_queued();
        if depth_before == 0 {
            return Ok(());
        }
        let batch_size = self.config.batch_size.max(1);

        // Round-robin across tenants (name order) so one noisy tenant
        // cannot starve the rest out of a batch.
        let mut picked: Vec<QueuedRequest> = Vec::new();
        loop {
            let before = picked.len();
            for t in self.tenants.values_mut() {
                if picked.len() >= batch_size {
                    break;
                }
                if let Some(request) = t.queue.pop_front() {
                    picked.push(request);
                }
            }
            if picked.len() == before || picked.len() >= batch_size {
                break;
            }
        }
        if picked.is_empty() {
            return Ok(());
        }
        self.batches += 1;
        let batch = self.batches;
        let span_name = format!("serve-batch-{batch}");
        let stage = obs.tracer().enter(&span_name);
        let now = obs.clock().now_ms();

        // Tier choice: queue depth caps it, breaker health may degrade it
        // further. Breakers are only probed when models might be queried,
        // so a saturated (detector-only) batch never consumes half-open
        // probe allowance.
        let depth_tier = tier_ceiling(&self.config.degrade, depth_before);
        let mut healthy = vec![false; self.members.len()];
        if depth_tier != ServiceTier::DetectorOnly {
            for (i, member) in self.members.iter().enumerate() {
                healthy[i] = member.breaker.try_acquire().is_ok();
            }
        }
        let voters = self.members.iter().filter(|m| m.voting).count();
        let healthy_voters = self
            .members
            .iter()
            .zip(&healthy)
            .filter(|(m, &h)| m.voting && h)
            .count();
        let breaker_tier = if depth_tier == ServiceTier::DetectorOnly {
            ServiceTier::DetectorOnly
        } else if healthy.iter().all(|&h| h) {
            ServiceTier::FullEnsemble
        } else if healthy_voters >= 1 {
            ServiceTier::DegradedQuorum
        } else {
            ServiceTier::DetectorOnly
        };
        let batch_tier = depth_tier.max(breaker_tier);

        let queried: Vec<usize> = match batch_tier {
            ServiceTier::FullEnsemble => (0..self.members.len()).collect(),
            ServiceTier::DegradedQuorum => self
                .members
                .iter()
                .enumerate()
                .filter(|(i, m)| m.voting && healthy[*i])
                .map(|(i, _)| i)
                .collect(),
            ServiceTier::DetectorOnly => Vec::new(),
        };
        let queried_names: Vec<String> = queried
            .iter()
            .map(|&i| self.members[i].profile.name.clone())
            .collect();

        // Deadline headroom demotes individual requests to the detector
        // tier: an answer now beats an ensemble answer past the deadline.
        let ensemble_slot: Vec<bool> = picked
            .iter()
            .map(|request| {
                batch_tier != ServiceTier::DetectorOnly
                    && now.saturating_add(self.config.batch_service_ms) <= request.deadline_ms
            })
            .collect();
        let ensemble_count = ensemble_slot.iter().filter(|&&s| s).count();
        state.log.push(format!(
            "[t={now}ms] batch {batch}: tier={batch_tier} size={} ensemble={ensemble_count} detector={} healthy_voters={healthy_voters}/{voters} queried=[{}]",
            picked.len(),
            picked.len() - ensemble_count,
            queried_names.join(", ")
        ));

        let requests: Vec<ModelRequest> = picked
            .iter()
            .zip(&ensemble_slot)
            .filter(|(_, &slot)| slot)
            .map(|(request, _)| ModelRequest {
                context: request.context.clone(),
                prompt: self.prompt.clone(),
                params: self.params,
            })
            .collect();

        // Fan out per queried member. The executor gets the scratch
        // clock, so the service clock stays frozen; breakers are fed in
        // request order after the order-preserving run returns.
        type MemberResults = Vec<std::result::Result<ModelResponse, TransportError>>;
        let mut member_results: BTreeMap<usize, MemberResults> = BTreeMap::new();
        if !requests.is_empty() {
            for &m in &queried {
                let member = &self.members[m];
                let exec_config = ExecutorConfig {
                    parallelism: self.config.parallelism,
                    rate_limit: None,
                    retry: RetryPolicy {
                        max_attempts: 1,
                        ..RetryPolicy::default()
                    },
                    hedge: None,
                    seed: child_seed_n(self.config.survey_seed, "serve-exec", m as u64),
                };
                let results = BatchExecutor::new(Arc::clone(&member.transport), exec_config)
                    .with_accounting(Arc::clone(&self.scratch), Arc::clone(&self.meter))
                    .with_pricing(
                        member.profile.usd_per_1k_input,
                        member.profile.usd_per_1k_output,
                    )
                    .with_obs(obs.clone())
                    .run(requests.clone());
                for result in &results {
                    member.breaker.record(result.is_ok());
                }
                member_results.insert(m, results);
            }
        }

        // Resolve each slot: parse, vote, or fall through to the
        // detector. Serial, in picked order.
        let mut fresh: BTreeMap<usize, std::vec::IntoIter<_>> = member_results
            .into_iter()
            .map(|(m, results)| (m, results.into_iter()))
            .collect();
        let mut outcomes: Vec<Served> = Vec::with_capacity(picked.len());
        for (request, &slot) in picked.iter().zip(&ensemble_slot) {
            if !slot {
                outcomes.push(Served {
                    presence: self.config.detector.detect(&request.context),
                    tier: ServiceTier::DetectorOnly,
                    fallback: None,
                    deadline_blown: batch_tier != ServiceTier::DetectorOnly,
                    input_tokens: 0,
                    output_tokens: 0,
                    usd: 0.0,
                    lines: Vec::new(),
                });
                continue;
            }
            let mut votes: Vec<Option<IndicatorSet>> = Vec::new();
            let mut input_tokens = 0u64;
            let mut output_tokens = 0u64;
            let mut usd = 0.0f64;
            let mut lines: Vec<BillingLine> = Vec::new();
            for &m in &queried {
                let member = &self.members[m];
                let result = fresh
                    .get_mut(&m)
                    .expect("results for every queried member")
                    .next()
                    .expect("one executor result per ensemble slot");
                match result {
                    Ok(response) => {
                        let mut answers = Vec::with_capacity(6);
                        let mut complete = true;
                        for (text, message) in response.texts.iter().zip(&self.prompt.messages) {
                            let parsed =
                                parse_response(text, self.prompt.language, message.questions.len());
                            complete &= parsed.is_complete();
                            answers.extend(parsed.answers);
                        }
                        if !complete {
                            registry.add("serve.parse_failures", 1);
                        }
                        let mut set = IndicatorSet::new();
                        for (ind, ans) in self.prompt.question_order().iter().zip(answers) {
                            if ans == Some(true) {
                                set.insert(*ind);
                            }
                        }
                        if member.voting {
                            votes.push(Some(set));
                        }
                        // shared pricing rule: per-line tenant bills must be
                        // computed exactly as the CostMeter computes them
                        let line_usd = nbhd_client::token_cost_usd(
                            response.input_tokens,
                            response.output_tokens,
                            member.profile.usd_per_1k_input,
                            member.profile.usd_per_1k_output,
                        );
                        input_tokens += response.input_tokens;
                        output_tokens += response.output_tokens;
                        usd += line_usd;
                        lines.push(BillingLine {
                            model: member.profile.name.clone(),
                            input: response.input_tokens,
                            output: response.output_tokens,
                            p_in: member.profile.usd_per_1k_input,
                            p_out: member.profile.usd_per_1k_output,
                            latency: response.latency_ms,
                        });
                    }
                    Err(_) => {
                        // Transport failures are not journaled: a resumed
                        // run re-executes them rather than replaying the
                        // failure.
                        if member.voting {
                            votes.push(None);
                        }
                        registry.add("serve.transport_failures", 1);
                    }
                }
            }
            let (set, prov) = quorum_vote(&votes, &self.config.quorum);
            if prov.fallback == VoteFallback::NoResponders {
                // Nobody answered: the queried models are still billed,
                // but the detector supplies the answer.
                outcomes.push(Served {
                    presence: self.config.detector.detect(&request.context),
                    tier: ServiceTier::DetectorOnly,
                    fallback: Some(VoteFallback::NoResponders),
                    deadline_blown: false,
                    input_tokens,
                    output_tokens,
                    usd,
                    lines,
                });
            } else {
                outcomes.push(Served {
                    presence: set,
                    tier: batch_tier,
                    fallback: Some(prov.fallback),
                    deadline_blown: false,
                    input_tokens,
                    output_tokens,
                    usd,
                    lines,
                });
            }
        }

        // Finalize serially: journal (save-before-act), bill, log.
        for (request, served) in picked.iter().zip(outcomes) {
            let wait_ms = now.saturating_sub(request.arrival_ms);
            let record = ResponseRecord {
                bits: served.presence.bits(),
                tier: served.tier.as_str().to_string(),
                input_tokens: served.input_tokens,
                output_tokens: served.output_tokens,
                usd: served.usd,
                wait_ms,
            };
            if let Some(store) = &self.checkpoint {
                store.save(
                    RESPONSE_RECORD_KIND,
                    &response_key(&request.tenant, request.request_id),
                    serde_json::to_value(&record)
                        .map_err(|e| Error::parse(format!("serve response record: {e}")))?,
                )?;
            }
            let tenant = self
                .tenants
                .get_mut(&request.tenant)
                .ok_or_else(|| Error::config(format!("unknown tenant {}", request.tenant)))?;
            tenant.bill.served += 1;
            tenant.bill.input_tokens += served.input_tokens;
            tenant.bill.output_tokens += served.output_tokens;
            tenant.bill.usd += served.usd;
            if served.lines.is_empty() {
                tenant
                    .meter
                    .record_success("detector", 0, 0, 0.0, 0.0, 0.0, 1);
            } else {
                for line in &served.lines {
                    tenant.meter.record_success(
                        &line.model,
                        line.input,
                        line.output,
                        line.p_in,
                        line.p_out,
                        line.latency,
                        1,
                    );
                }
            }
            registry.record_hist("serve.admission_wait_ms", wait_ms);
            registry.record_hist(&format!("serve.tenant.{}.wait_ms", request.tenant), wait_ms);
            let tier = match served.tier {
                ServiceTier::FullEnsemble => "full",
                ServiceTier::DegradedQuorum => "quorum",
                ServiceTier::DetectorOnly => "detector",
            };
            registry.add(&format!("serve.tier.{tier}"), 1);
            registry.add(&format!("serve.tenant.{}.tier.{tier}", request.tenant), 1);
            state.log.push(format!(
                "[t={now}ms] {}#{} served tier={} presence={} wait={wait_ms}ms",
                request.tenant, request.request_id, served.tier, served.presence
            ));
            state.responses.push(ServiceResponse {
                tenant: request.tenant.clone(),
                request_id: request.request_id,
                presence: served.presence,
                provenance: ServiceProvenance {
                    tier: served.tier,
                    batch,
                    queried: if served.tier == ServiceTier::DetectorOnly {
                        Vec::new()
                    } else {
                        queried_names.clone()
                    },
                    fallback: served.fallback,
                    replayed: false,
                    wait_ms,
                    deadline_blown: served.deadline_blown,
                },
            });
        }

        // Pace the service clock by how long the batch occupied it.
        let advance = if requests.is_empty() {
            self.config.detector_service_ms
        } else {
            self.config.batch_service_ms
        };
        obs.clock().advance_ms(advance);
        stage.record();
        Ok(())
    }

    /// Publishes breaker evolution as deterministic counters: the serve
    /// breakers advance only in the serial loop, so their counts are
    /// worker-count invariant (unlike wall-side executor metrics).
    fn publish_breakers(&self, registry: &MetricsRegistry) {
        for member in &self.members {
            let snap = member.breaker.snapshot();
            let name = &member.profile.name;
            registry.set(
                &format!("serve.breaker.{name}.transitions"),
                snap.transitions,
            );
            registry.set(&format!("serve.breaker.{name}.fail_fast"), snap.fail_fast);
            registry.set(&format!("serve.breaker.{name}.opened"), snap.edges.opened);
            registry.set(&format!("serve.breaker.{name}.probed"), snap.edges.probed);
            registry.set(
                &format!("serve.breaker.{name}.reclosed"),
                snap.edges.reclosed,
            );
            registry.set(
                &format!("serve.breaker.{name}.reopened"),
                snap.edges.reopened,
            );
            registry.set(&format!("serve.breaker.{name}.flaps"), snap.edges.flaps());
        }
    }

    /// Publishes per-tenant end-of-run gauges: the queue high-water mark
    /// (`.peak`-suffixed, so it survives `RunArtifact::merge_shards`'
    /// max-folding convention) and the tenant's billed USD (`.usd`-
    /// suffixed, so `BudgetRule::UsdMax` sees it on tenant artifacts).
    /// Both values accumulate in the serial loop and are deterministic.
    fn publish_tenants(&self, registry: &MetricsRegistry) {
        for (name, tenant) in &self.tenants {
            registry.set_gauge(
                &format!("serve.tenant.{name}.queue_depth.peak"),
                tenant.peak_queue_depth as f64,
            );
            registry.set_gauge(&format!("serve.tenant.{name}.usd"), tenant.bill.usd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StormBuilder;
    use nbhd_client::{BreakerState, FaultRegime};
    use nbhd_journal::MemoryStore;

    #[test]
    fn calm_run_serves_everything_at_full_tier() {
        let (workload, _) = StormBuilder::new(42)
            .steady("acme", 0, 10, 250)
            .steady("beta", 0, 10, 250)
            .build();
        let mut service = SurveyService::new(
            ServiceConfig::default(),
            vec![TenantConfig::new("acme"), TenantConfig::new("beta")],
        );
        let report = service.run(workload).unwrap();
        assert_eq!(report.responses.len(), 20);
        assert!(report.rejections.is_empty());
        assert!(report
            .responses
            .iter()
            .all(|r| r.provenance.tier == ServiceTier::FullEnsemble && !r.provenance.replayed));
        assert_eq!(report.tier_counts()[&ServiceTier::FullEnsemble], 20);
        let bill = &report.bills["acme"];
        assert_eq!(bill.admitted, 10);
        assert_eq!(bill.served, 10);
        assert_eq!(bill.rejected, 0);
        assert!(bill.usd > 0.0 && bill.input_tokens > 0);
        assert!(!report.decision_log.is_empty());
        // every response carries the full queried panel
        assert!(report
            .responses
            .iter()
            .all(|r| r.provenance.queried.len() == 4));
    }

    #[test]
    fn per_line_billing_matches_the_tenant_meter_pricing() {
        // golden pricing test: every billing line is priced by the shared
        // nbhd_client::token_cost_usd rule, so the serially-summed bill
        // equals the tenant meter's per-model total (same line values,
        // different float summation order), and token counts match exactly.
        let (workload, _) = StormBuilder::new(11)
            .steady("acme", 0, 8, 250)
            .steady("beta", 0, 6, 300)
            .build();
        let mut service = SurveyService::new(
            ServiceConfig::default(),
            vec![TenantConfig::new("acme"), TenantConfig::new("beta")],
        );
        let report = service.run(workload).unwrap();
        for tenant in ["acme", "beta"] {
            let bill = &report.bills[tenant];
            assert!(bill.usd > 0.0, "tenant {tenant} billed nothing");
            let meter = service.tenant_meter(tenant).expect("known tenant");
            assert!(
                (bill.usd - meter.total_usd()).abs() < 1e-9,
                "tenant {tenant}: bill {} vs meter {}",
                bill.usd,
                meter.total_usd()
            );
            let snapshot = meter.snapshot();
            let metered_in: u64 = snapshot.values().map(|u| u.input_tokens).sum();
            let metered_out: u64 = snapshot.values().map(|u| u.output_tokens).sum();
            assert_eq!(metered_in, bill.input_tokens, "tenant {tenant}");
            assert_eq!(metered_out, bill.output_tokens, "tenant {tenant}");
        }
        assert!(service.tenant_meter("nobody").is_none());
    }

    #[test]
    fn total_outage_degrades_to_detector_and_opens_breakers() {
        let (workload, schedule) = StormBuilder::new(7)
            .steady("acme", 0, 12, 100)
            .with_regime(FaultRegime::outage(0, u64::MAX))
            .build();
        let config = ServiceConfig {
            schedule,
            breaker: BreakerConfig {
                min_samples: 4,
                cooldown_ms: 600_000,
                ..BreakerConfig::default()
            },
            ..ServiceConfig::default()
        };
        let mut service = SurveyService::new(config, vec![TenantConfig::new("acme")]);
        let report = service.run(workload).unwrap();
        assert_eq!(report.responses.len(), 12);
        assert!(report.rejections.is_empty());
        // every answer came from the detector; early ones via vote
        // fallback, later ones via open breakers
        assert!(report
            .responses
            .iter()
            .all(|r| r.provenance.tier == ServiceTier::DetectorOnly));
        assert!(report
            .responses
            .iter()
            .any(|r| r.provenance.fallback == Some(VoteFallback::NoResponders)));
        assert!(report
            .health
            .models
            .iter()
            .all(|m| m.breaker.state == BreakerState::Open));
        // the detector itself never bills tokens, but failed queries were
        // attempted (zero tokens since nothing responded)
        assert_eq!(report.bills["acme"].input_tokens, 0);
    }

    #[test]
    fn full_queue_rejects_typed_and_bounded() {
        let (workload, _) = StormBuilder::new(3).burst("acme", 0, 20).build();
        let mut service = SurveyService::new(
            ServiceConfig::default(),
            vec![TenantConfig::new("acme")
                .with_queue_capacity(4)
                .with_quota(32, 1.0)],
        );
        let report = service.run(workload).unwrap();
        assert_eq!(report.responses.len(), 4);
        assert_eq!(report.rejections.len(), 16);
        assert!(report.rejections.iter().all(|r| matches!(
            r.reason,
            Rejected::QueueFull {
                depth: 4,
                capacity: 4
            }
        )));
        assert_eq!(report.bills["acme"].rejected, 16);
    }

    #[test]
    fn global_saturation_sheds_and_depth_degrades_the_tier() {
        let (workload, _) = StormBuilder::new(5)
            .burst("acme", 0, 8)
            .burst("beta", 0, 8)
            .build();
        let config = ServiceConfig {
            batch_size: 32,
            global_queue_capacity: 10,
            degrade: DegradePolicy {
                quorum_depth: 8,
                detector_depth: 32,
            },
            ..ServiceConfig::default()
        };
        let mut service = SurveyService::new(
            config,
            vec![TenantConfig::new("acme"), TenantConfig::new("beta")],
        );
        let report = service.run(workload).unwrap();
        let shed: Vec<_> = report
            .rejections
            .iter()
            .filter(
                |r| matches!(&r.reason, Rejected::Degraded { reason } if reason.contains("10/10")),
            )
            .collect();
        assert_eq!(shed.len(), 6, "beta's overflow is shed globally");
        assert_eq!(report.responses.len(), 10);
        // depth 10 >= quorum_depth 8: the drain batch runs degraded, only
        // the three voters are queried
        assert!(report
            .responses
            .iter()
            .all(|r| r.provenance.tier == ServiceTier::DegradedQuorum
                && r.provenance.queried.len() == 3));
    }

    #[test]
    fn quota_exhaustion_rejects_with_refill_hint() {
        let (workload, _) = StormBuilder::new(9).burst("acme", 0, 6).build();
        let mut service = SurveyService::new(
            ServiceConfig::default(),
            vec![TenantConfig::new("acme").with_quota(2, 0.5)],
        );
        let report = service.run(workload).unwrap();
        assert_eq!(report.responses.len(), 2);
        assert_eq!(report.rejections.len(), 4);
        assert!(report
            .rejections
            .iter()
            .all(|r| matches!(r.reason, Rejected::QuotaExhausted { retry_after_ms } if retry_after_ms > 0)));
    }

    #[test]
    fn budget_cutoff_stops_admitting_after_spend() {
        let (workload, _) = StormBuilder::new(11).steady("acme", 0, 4, 10).build();
        let config = ServiceConfig {
            batch_size: 1,
            ..ServiceConfig::default()
        };
        let mut service = SurveyService::new(
            config,
            vec![TenantConfig::new("acme").with_budget_usd(1e-9)],
        );
        let report = service.run(workload).unwrap();
        assert_eq!(
            report.responses.len(),
            1,
            "first request lands under budget"
        );
        assert_eq!(report.rejections.len(), 3);
        assert!(report
            .rejections
            .iter()
            .all(|r| r.reason == Rejected::BudgetExhausted));
        assert!(report.bills["acme"].usd > 1e-9);
    }

    #[test]
    fn blown_deadlines_demote_to_detector_instead_of_dropping() {
        let (workload, _) = StormBuilder::new(13).steady("acme", 0, 6, 50).build();
        let mut service = SurveyService::new(
            ServiceConfig::default(),
            vec![TenantConfig::new("acme").with_deadline_ms(0)],
        );
        let report = service.run(workload).unwrap();
        assert_eq!(report.responses.len(), 6);
        assert!(report.responses.iter().all(|r| {
            r.provenance.tier == ServiceTier::DetectorOnly && r.provenance.deadline_blown
        }));
        assert_eq!(
            report.bills["acme"].usd, 0.0,
            "detector answers bill nothing"
        );
        assert_eq!(service.api_attempts("gemini-1.5-pro"), 0);
    }

    #[test]
    fn journaled_responses_replay_without_requerying_or_double_billing() {
        let storm = || {
            StormBuilder::new(17)
                .steady("acme", 0, 6, 200)
                .burst("beta", 300, 4)
                .build()
        };
        let store = Arc::new(MemoryStore::new());
        let tenants = || vec![TenantConfig::new("acme"), TenantConfig::new("beta")];
        let mut first = SurveyService::new(ServiceConfig::default(), tenants())
            .with_checkpoint(Arc::clone(&store) as Arc<dyn CheckpointStore>);
        let (workload, _) = storm();
        let before = first.run(workload).unwrap();
        assert_eq!(store.load_kind(RESPONSE_RECORD_KIND).len(), 10);

        let mut second = SurveyService::new(ServiceConfig::default(), tenants())
            .with_checkpoint(Arc::clone(&store) as Arc<dyn CheckpointStore>);
        let (workload, _) = storm();
        let after = second.run(workload).unwrap();
        assert!(after.responses.iter().all(|r| r.provenance.replayed));
        assert_eq!(
            second.api_attempts("gemini-1.5-pro"),
            0,
            "no model requeried"
        );
        // answers identical per request; bills identical to float tolerance
        let key = |r: &ServiceResponse| (r.tenant.clone(), r.request_id);
        let answers = |report: &RunReport| -> BTreeMap<_, _> {
            report
                .responses
                .iter()
                .map(|r| (key(r), r.presence))
                .collect()
        };
        assert_eq!(answers(&before), answers(&after));
        for (name, b) in &before.bills {
            let a = &after.bills[name];
            assert_eq!(
                (a.served, a.input_tokens, a.output_tokens),
                (b.served, b.input_tokens, b.output_tokens)
            );
            assert!((a.usd - b.usd).abs() < 1e-9);
            assert_eq!(a.replayed, b.served, "every response replayed");
        }
    }

    #[test]
    fn decision_surface_is_worker_count_invariant_under_storm() {
        let run = |parallelism: Parallelism| {
            let (workload, schedule) = StormBuilder::new(99)
                .steady("acme", 0, 10, 120)
                .burst("beta", 300, 12)
                .storm_429(0, 4_000, 0.5, 300)
                .breaker_flap("grok-2", 0, 1_000, 2)
                .build();
            let config = ServiceConfig {
                schedule,
                parallelism,
                breaker: BreakerConfig {
                    min_samples: 3,
                    ..BreakerConfig::default()
                },
                ..ServiceConfig::default()
            };
            let mut service = SurveyService::new(
                config,
                vec![
                    TenantConfig::new("acme"),
                    TenantConfig::new("beta")
                        .with_quota(4, 1.0)
                        .with_queue_capacity(8),
                ],
            );
            let report = service.run(workload).unwrap();
            let text = service.obs().summary().deterministic_text();
            (report, text)
        };
        let (serial, serial_text) = run(Parallelism::serial());
        let (parallel, parallel_text) = run(Parallelism::fixed(8));
        assert_eq!(serial.responses, parallel.responses);
        assert_eq!(serial.rejections, parallel.rejections);
        assert_eq!(serial.decision_text(), parallel.decision_text());
        assert_eq!(serial_text, parallel_text);
        assert!(
            !serial.rejections.is_empty(),
            "the storm must actually bite"
        );
    }
}
