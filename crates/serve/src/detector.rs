//! The detector-only tier: a transport-free fallback answering from
//! scene evidence.

use nbhd_types::{Indicator, IndicatorSet};
use nbhd_vlm::ImageContext;

/// Thresholds scene evidence into a presence prediction without touching
/// any model transport — the service's bottom serving tier.
///
/// An indicator is predicted present when its visibility clears the
/// visibility threshold (so faint-but-present indicators are missed,
/// like a weak single detector would), or when its distractor score
/// clears the distractor threshold (so strongly suggestive scenes
/// produce false positives). Deterministic and free: usable under total
/// ensemble outage and billed at zero tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceDetector {
    /// Minimum visibility for a present call, in `[0, 1]`.
    pub visibility_threshold: f32,
    /// Minimum distractor score for a (false-positive) present call, in
    /// `[0, 1]`.
    pub distractor_threshold: f32,
}

impl Default for EvidenceDetector {
    fn default() -> Self {
        EvidenceDetector {
            visibility_threshold: 0.3,
            distractor_threshold: 0.9,
        }
    }
}

impl EvidenceDetector {
    /// Predicts presence for one image from its evidence scores.
    pub fn detect(&self, context: &ImageContext) -> IndicatorSet {
        let mut set = IndicatorSet::new();
        for ind in Indicator::ALL {
            let evidence = context.evidence[ind];
            if evidence.visibility >= self.visibility_threshold
                || evidence.distractor >= self.distractor_threshold
            {
                set.insert(ind);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbhd_geo::{RoadClass, Zoning};
    use nbhd_scene::{SceneGenerator, ViewKind};
    use nbhd_types::{Heading, ImageId, LocationId};

    fn contexts(n: u64) -> Vec<ImageContext> {
        let generator = SceneGenerator::new(11);
        (0..n)
            .map(|loc| {
                let zone = [Zoning::Urban, Zoning::Suburban, Zoning::Rural][(loc % 3) as usize];
                let spec = generator.compose_raw(
                    ImageId::new(LocationId(loc), Heading::North),
                    zone,
                    RoadClass::Multilane,
                    ViewKind::AlongRoad,
                );
                ImageContext::from_scene(&spec, 11)
            })
            .collect()
    }

    #[test]
    fn is_deterministic_and_better_than_chance() {
        let detector = EvidenceDetector::default();
        let ctxs = contexts(120);
        let mut correct = 0usize;
        let mut total = 0usize;
        for ctx in &ctxs {
            assert_eq!(detector.detect(ctx), detector.detect(ctx));
            let predicted = detector.detect(ctx);
            for ind in Indicator::ALL {
                total += 1;
                correct += usize::from(predicted.contains(ind) == ctx.presence.contains(ind));
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy > 0.6,
            "evidence thresholding should beat chance, got {accuracy:.3}"
        );
    }

    #[test]
    fn is_imperfect_enough_to_be_a_degraded_tier() {
        // the detector must NOT be an oracle: faint present indicators are
        // missed, so at least some images disagree with ground truth
        let detector = EvidenceDetector::default();
        let disagreements = contexts(120)
            .iter()
            .filter(|ctx| detector.detect(ctx) != ctx.presence)
            .count();
        assert!(
            disagreements > 0,
            "thresholding should be lossy, not a ground-truth oracle"
        );
    }

    #[test]
    fn stricter_visibility_threshold_predicts_less() {
        let loose = EvidenceDetector {
            visibility_threshold: 0.1,
            distractor_threshold: 1.1,
        };
        let strict = EvidenceDetector {
            visibility_threshold: 0.9,
            distractor_threshold: 1.1,
        };
        let ctxs = contexts(80);
        let count = |d: &EvidenceDetector| -> usize {
            ctxs.iter().map(|c| d.detect(c).len()).sum()
        };
        assert!(count(&strict) < count(&loose));
    }
}
