//! Property-based tests: the response parser must be total and stable on
//! arbitrary input, and prompt construction must be well-formed for every
//! language/mode combination.

use nbhd_prompt::{parse_response, Language, Prompt, PromptMode, PROMPT_ORDER};
use proptest::prelude::*;

fn arb_language() -> impl Strategy<Value = Language> {
    prop_oneof![
        Just(Language::English),
        Just(Language::Spanish),
        Just(Language::Chinese),
        Just(Language::Bengali),
    ]
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_text(text in ".{0,400}", lang in arb_language(), n in 0usize..10) {
        let parsed = parse_response(&text, lang, n);
        prop_assert_eq!(parsed.answers.len(), n);
        prop_assert!(parsed.failures <= n);
    }

    #[test]
    fn parser_is_deterministic(text in ".{0,200}", lang in arb_language()) {
        let a = parse_response(&text, lang, 6);
        let b = parse_response(&text, lang, 6);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn well_formed_answers_always_parse(answers in proptest::collection::vec(any::<bool>(), 6), lang in arb_language()) {
        let text = answers
            .iter()
            .map(|&a| if a { lang.yes_word() } else { lang.no_word() })
            .collect::<Vec<_>>()
            .join(", ");
        let parsed = parse_response(&text, lang, 6);
        prop_assert!(parsed.is_complete(), "failed on {text:?}");
        for (got, want) in parsed.answers.iter().zip(&answers) {
            prop_assert_eq!(*got, Some(*want));
        }
    }

    #[test]
    fn parsed_presence_only_contains_yes_answers(answers in proptest::collection::vec(any::<bool>(), 6)) {
        let text = answers
            .iter()
            .map(|&a| if a { "Yes" } else { "No" })
            .collect::<Vec<_>>()
            .join(", ");
        let parsed = parse_response(&text, Language::English, 6);
        let set = parsed.to_presence(&PROMPT_ORDER);
        for (ind, yes) in PROMPT_ORDER.iter().zip(&answers) {
            prop_assert_eq!(set.contains(*ind), *yes);
        }
    }

    #[test]
    fn prompts_are_well_formed(lang in arb_language(), sequential in any::<bool>()) {
        let mode = if sequential { PromptMode::Sequential } else { PromptMode::Parallel };
        let p = Prompt::build(lang, mode);
        prop_assert_eq!(p.question_count(), 6);
        prop_assert_eq!(p.question_order(), PROMPT_ORDER.to_vec());
        for m in &p.messages {
            prop_assert!(!m.text.trim().is_empty());
            prop_assert!(!m.questions.is_empty());
        }
    }

    #[test]
    fn extra_yes_no_tokens_never_underflow(k in 0usize..20) {
        let text = vec!["yes"; k].join(" ");
        let parsed = parse_response(&text, Language::English, 6);
        prop_assert_eq!(parsed.extra_tokens, k.saturating_sub(6));
        prop_assert_eq!(parsed.failures, 6usize.saturating_sub(k));
    }
}
