//! Prompt languages and their lexicons.
//!
//! The study evaluates English, Spanish, simplified Chinese, and Bengali
//! prompts (Sec. IV-C3, Appendix B), translated with native-speaker review.

use serde::{Deserialize, Serialize};

/// A prompt language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// English (the study's reference language).
    English,
    /// Spanish.
    Spanish,
    /// Simplified Chinese.
    Chinese,
    /// Bengali.
    Bengali,
}

impl Language {
    /// All four studied languages, English first.
    pub const ALL: [Language; 4] = [
        Language::English,
        Language::Spanish,
        Language::Chinese,
        Language::Bengali,
    ];

    /// The affirmative tokens accepted when parsing responses.
    pub fn yes_tokens(self) -> &'static [&'static str] {
        match self {
            Language::English => &["yes", "yeah", "yep"],
            Language::Spanish => &["sí", "si"],
            Language::Chinese => &["是", "有"],
            Language::Bengali => &["হ্যাঁ", "হা", "হ্যা"],
        }
    }

    /// The negative tokens accepted when parsing responses.
    pub fn no_tokens(self) -> &'static [&'static str] {
        match self {
            Language::English => &["no", "nope"],
            Language::Spanish => &["no"],
            Language::Chinese => &["否", "没有", "不是", "无"],
            Language::Bengali => &["না"],
        }
    }

    /// The canonical "Yes" word used when a model verbalizes an answer.
    pub fn yes_word(self) -> &'static str {
        match self {
            Language::English => "Yes",
            Language::Spanish => "Sí",
            Language::Chinese => "是",
            Language::Bengali => "হ্যাঁ",
        }
    }

    /// The canonical "No" word used when a model verbalizes an answer.
    pub fn no_word(self) -> &'static str {
        match self {
            Language::English => "No",
            Language::Spanish => "No",
            Language::Chinese => "否",
            Language::Bengali => "না",
        }
    }

    /// BCP-47-ish tag.
    pub fn tag(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::Spanish => "es",
            Language::Chinese => "zh",
            Language::Bengali => "bn",
        }
    }
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Language::English => "English",
            Language::Spanish => "Spanish",
            Language::Chinese => "Chinese",
            Language::Bengali => "Bengali",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicons_are_disjoint() {
        for lang in Language::ALL {
            for y in lang.yes_tokens() {
                assert!(
                    !lang.no_tokens().contains(y),
                    "{lang}: token {y:?} is both yes and no"
                );
            }
        }
    }

    #[test]
    fn canonical_words_parse_as_themselves() {
        for lang in Language::ALL {
            let yes = lang.yes_word().to_lowercase();
            assert!(
                lang.yes_tokens().iter().any(|t| *t == yes),
                "{lang}: canonical yes {yes:?} not in lexicon"
            );
            let no = lang.no_word().to_lowercase();
            assert!(
                lang.no_tokens().iter().any(|t| *t == no),
                "{lang}: canonical no {no:?} not in lexicon"
            );
        }
    }

    #[test]
    fn tags_are_unique() {
        let tags: std::collections::HashSet<_> = Language::ALL.iter().map(|l| l.tag()).collect();
        assert_eq!(tags.len(), 4);
    }
}
