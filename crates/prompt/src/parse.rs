//! Robust parsing of model responses back into per-question answers.
//!
//! Real model output is messy: "Yes, No, No, Yes, No, Yes", "yes — there is
//! a sidewalk", missing answers, filler tokens, or a different language's
//! yes/no. The parser tokenizes the response, maps tokens through the
//! language lexicon, and aligns the resulting answer stream with the
//! expected question order.

use nbhd_types::{Indicator, IndicatorSet};
use serde::{Deserialize, Serialize};

use crate::Language;

/// The outcome of parsing one response against its expected questions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedAnswers {
    /// Per-question answers in question order; `None` when unparseable.
    pub answers: Vec<Option<bool>>,
    /// Number of questions that did not receive a parseable answer.
    pub failures: usize,
    /// Yes/no tokens found beyond the expected count (format drift).
    pub extra_tokens: usize,
}

impl ParsedAnswers {
    /// Returns `true` when every question got an answer.
    pub fn is_complete(&self) -> bool {
        self.failures == 0
    }

    /// Folds answers into a presence set given the question order.
    /// Unparseable answers default to "absent" (`treat_missing_as_no`), the
    /// evaluation convention used throughout the study harness.
    ///
    /// # Panics
    ///
    /// Panics when `order` and the parsed answers disagree in length.
    pub fn to_presence(&self, order: &[Indicator]) -> IndicatorSet {
        assert_eq!(
            order.len(),
            self.answers.len(),
            "question order and answers must align"
        );
        let mut set = IndicatorSet::new();
        for (ind, ans) in order.iter().zip(&self.answers) {
            if ans == &Some(true) {
                set.insert(*ind);
            }
        }
        set
    }
}

/// Parses a response expected to answer `expected` questions.
///
/// ```
/// use nbhd_prompt::{parse_response, Language};
///
/// let parsed = parse_response("Yes, No, no, YES, No, Yes", Language::English, 6);
/// assert!(parsed.is_complete());
/// assert_eq!(
///     parsed.answers,
///     vec![Some(true), Some(false), Some(false), Some(true), Some(false), Some(true)],
/// );
/// ```
pub fn parse_response(text: &str, language: Language, expected: usize) -> ParsedAnswers {
    let mut found: Vec<bool> = Vec::new();
    for token in tokenize(text) {
        if is_yes(&token, language) {
            found.push(true);
        } else if is_no(&token, language) {
            found.push(false);
        }
    }
    let extra_tokens = found.len().saturating_sub(expected);
    let mut answers: Vec<Option<bool>> = found.into_iter().take(expected).map(Some).collect();
    let failures = expected - answers.len();
    answers.resize(expected, None);
    ParsedAnswers {
        answers,
        failures,
        extra_tokens,
    }
}

/// Splits on whitespace and punctuation, lowercasing ASCII.
fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| {
        c.is_whitespace()
            || matches!(
                c,
                ',' | '.' | ';' | ':' | '!' | '?' | '，' | '。' | '；' | '：' | '！' | '？'
                    | '、' | '\'' | '"' | '(' | ')' | '-' | '—' | '।'
            )
    })
    .filter(|t| !t.is_empty())
    .map(|t| t.to_lowercase())
}

fn is_yes(token: &str, language: Language) -> bool {
    language.yes_tokens().contains(&token)
}

fn is_no(token: &str, language: Language) -> bool {
    language.no_tokens().contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_format_parses() {
        let p = parse_response("Yes, No, No, Yes, No, Yes", Language::English, 6);
        assert!(p.is_complete());
        assert_eq!(p.extra_tokens, 0);
    }

    #[test]
    fn verbose_answers_still_parse() {
        let text = "Yes, there is a multi-lane road. No. No sidewalk is visible... \
                    Yes! A streetlight is present. No. And finally: yes.";
        let p = parse_response(text, Language::English, 6);
        assert!(p.is_complete());
        assert_eq!(
            p.answers,
            vec![Some(true), Some(false), Some(false), Some(true), Some(false), Some(true)]
        );
    }

    #[test]
    fn missing_answers_are_none() {
        let p = parse_response("Yes, No", Language::English, 6);
        assert_eq!(p.failures, 4);
        assert_eq!(p.answers[0], Some(true));
        assert_eq!(p.answers[2], None);
        assert!(!p.is_complete());
    }

    #[test]
    fn junk_only_response_fails_all() {
        let p = parse_response("I cannot assist with that request.", Language::English, 6);
        assert_eq!(p.failures, 6);
    }

    #[test]
    fn extra_answers_are_counted() {
        let p = parse_response("yes no yes no yes no yes yes", Language::English, 6);
        assert_eq!(p.extra_tokens, 2);
        assert!(p.is_complete());
    }

    #[test]
    fn spanish_accents_parse() {
        let p = parse_response("Sí, no, sí, NO, si, no", Language::Spanish, 6);
        assert!(p.is_complete());
        assert_eq!(p.answers[0], Some(true));
        assert_eq!(p.answers[4], Some(true));
    }

    #[test]
    fn chinese_fullwidth_punctuation_parses() {
        let p = parse_response("是，否，否，是，是，否。", Language::Chinese, 6);
        assert!(p.is_complete());
        assert_eq!(p.answers[0], Some(true));
        assert_eq!(p.answers[1], Some(false));
    }

    #[test]
    fn bengali_parses() {
        let p = parse_response("হ্যাঁ, না, না, হ্যাঁ, না, না।", Language::Bengali, 6);
        assert!(p.is_complete());
        assert_eq!(p.answers[0], Some(true));
        assert_eq!(p.answers[3], Some(true));
    }

    #[test]
    fn cross_language_words_do_not_parse() {
        // English yes/no in a Chinese-prompt context is format drift
        let p = parse_response("yes, no, yes", Language::Chinese, 6);
        assert_eq!(p.failures, 6);
    }

    #[test]
    fn presence_mapping_respects_order() {
        use nbhd_types::Indicator;
        let p = parse_response("yes no no no no yes", Language::English, 6);
        let order = crate::PROMPT_ORDER;
        let set = p.to_presence(&order);
        assert!(set.contains(Indicator::MultilaneRoad));
        assert!(set.contains(Indicator::Apartment));
        assert_eq!(set.len(), 2);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn presence_mapping_validates_length() {
        let p = parse_response("yes", Language::English, 1);
        let _ = p.to_presence(&crate::PROMPT_ORDER);
    }
}
