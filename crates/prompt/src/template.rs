//! Prompt construction: parallel (one combined request) vs. sequential
//! (one question per follow-up request).

use nbhd_types::Indicator;
use serde::{Deserialize, Serialize};

use crate::{format_instruction, question_text, Language, PROMPT_ORDER};

/// How the six questions are packaged into requests.
///
/// The paper finds parallel prompting (all questions in one request) beats
/// sequential follow-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PromptMode {
    /// All six questions in a single request, joined with "And".
    Parallel,
    /// Six requests, one question each, in the same conversation.
    Sequential,
}

/// One request message and the questions it carries, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptMessage {
    /// The full request text sent with the image.
    pub text: String,
    /// Which indicators the message asks about, in answer order.
    pub questions: Vec<Indicator>,
}

/// A complete prompt plan for one image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prompt {
    /// The prompt language.
    pub language: Language,
    /// Parallel or sequential packaging.
    pub mode: PromptMode,
    /// The request messages, in send order.
    pub messages: Vec<PromptMessage>,
}

impl Prompt {
    /// Builds the study's prompt for the given language and mode.
    ///
    /// ```
    /// use nbhd_prompt::{Language, Prompt, PromptMode};
    ///
    /// let parallel = Prompt::build(Language::English, PromptMode::Parallel);
    /// assert_eq!(parallel.messages.len(), 1);
    /// assert_eq!(parallel.messages[0].questions.len(), 6);
    ///
    /// let sequential = Prompt::build(Language::English, PromptMode::Sequential);
    /// assert_eq!(sequential.messages.len(), 6);
    /// ```
    pub fn build(language: Language, mode: PromptMode) -> Prompt {
        let messages = match mode {
            PromptMode::Parallel => {
                let mut text = String::from(format_instruction(language));
                text.push('\n');
                for (i, ind) in PROMPT_ORDER.iter().enumerate() {
                    if i > 0 {
                        text.push_str(joiner(language));
                        text.push(' ');
                    }
                    text.push_str(question_text(*ind, language));
                    text.push('\n');
                }
                vec![PromptMessage {
                    text,
                    questions: PROMPT_ORDER.to_vec(),
                }]
            }
            PromptMode::Sequential => PROMPT_ORDER
                .iter()
                .map(|&ind| PromptMessage {
                    text: question_text(ind, language).to_owned(),
                    questions: vec![ind],
                })
                .collect(),
        };
        Prompt {
            language,
            mode,
            messages,
        }
    }

    /// Total number of questions across messages (always six).
    pub fn question_count(&self) -> usize {
        self.messages.iter().map(|m| m.questions.len()).sum()
    }

    /// The indicators asked about, flattened in answer order.
    pub fn question_order(&self) -> Vec<Indicator> {
        self.messages
            .iter()
            .flat_map(|m| m.questions.iter().copied())
            .collect()
    }
}

/// The conjunction used between concatenated questions.
fn joiner(language: Language) -> &'static str {
    match language {
        Language::English => "And",
        Language::Spanish => "Y",
        Language::Chinese => "并且",
        Language::Bengali => "এবং",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_text_contains_all_questions_and_joiners() {
        let p = Prompt::build(Language::English, PromptMode::Parallel);
        let text = &p.messages[0].text;
        for ind in Indicator::ALL {
            let q = question_text(ind, Language::English);
            assert!(text.contains(q), "missing question for {ind}");
        }
        assert_eq!(text.matches("And ").count(), 5);
        assert!(text.starts_with("Respond in this format"));
    }

    #[test]
    fn sequential_messages_are_single_questions() {
        let p = Prompt::build(Language::Spanish, PromptMode::Sequential);
        assert_eq!(p.messages.len(), 6);
        for m in &p.messages {
            assert_eq!(m.questions.len(), 1);
            assert!(!m.text.contains('\n'));
        }
        assert_eq!(p.question_count(), 6);
    }

    #[test]
    fn question_order_follows_prompt_order_in_both_modes() {
        for mode in [PromptMode::Parallel, PromptMode::Sequential] {
            let p = Prompt::build(Language::Bengali, mode);
            assert_eq!(p.question_order(), PROMPT_ORDER.to_vec());
        }
    }

    #[test]
    fn prompt_serializes() {
        let p = Prompt::build(Language::Chinese, PromptMode::Parallel);
        let json = serde_json::to_string(&p).unwrap();
        let back: Prompt = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
