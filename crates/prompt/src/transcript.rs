//! Conversation transcripts: prompts, raw responses, parsed answers.

use nbhd_types::ImageId;
use serde::{Deserialize, Serialize};

use crate::{ParsedAnswers, Prompt};

/// One request/response exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exchange {
    /// The request text.
    pub request: String,
    /// The raw model response.
    pub response: String,
    /// The parsed answers for this exchange's questions.
    pub parsed: ParsedAnswers,
}

/// A complete conversation with one model about one image.
///
/// ```
/// use nbhd_prompt::{parse_response, Exchange, Language, Prompt, PromptMode, Transcript};
/// use nbhd_types::{Heading, ImageId, LocationId};
///
/// let prompt = Prompt::build(Language::English, PromptMode::Parallel);
/// let mut t = Transcript::new(ImageId::new(LocationId(1), Heading::North), "demo-model");
/// t.push(Exchange {
///     request: prompt.messages[0].text.clone(),
///     response: "Yes, No, No, Yes, No, Yes".to_owned(),
///     parsed: parse_response("Yes, No, No, Yes, No, Yes", Language::English, 6),
/// });
/// assert_eq!(t.exchanges.len(), 1);
/// assert!(t.all_parsed());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    /// The image discussed.
    pub image: ImageId,
    /// The model's name.
    pub model: String,
    /// The exchanges in order.
    pub exchanges: Vec<Exchange>,
}

impl Transcript {
    /// Starts an empty transcript.
    pub fn new(image: ImageId, model: impl Into<String>) -> Transcript {
        Transcript {
            image,
            model: model.into(),
            exchanges: Vec::new(),
        }
    }

    /// Appends an exchange.
    pub fn push(&mut self, exchange: Exchange) {
        self.exchanges.push(exchange);
    }

    /// Returns `true` when every exchange parsed completely.
    pub fn all_parsed(&self) -> bool {
        self.exchanges.iter().all(|e| e.parsed.is_complete())
    }

    /// Concatenated per-question answers across exchanges, in prompt order.
    pub fn answers(&self) -> Vec<Option<bool>> {
        self.exchanges
            .iter()
            .flat_map(|e| e.parsed.answers.iter().copied())
            .collect()
    }

    /// Validates that the transcript's questions match a prompt plan.
    pub fn matches_prompt(&self, prompt: &Prompt) -> bool {
        self.exchanges.len() == prompt.messages.len()
            && self
                .exchanges
                .iter()
                .zip(&prompt.messages)
                .all(|(e, m)| e.parsed.answers.len() == m.questions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_response, Language, PromptMode};
    use nbhd_types::{Heading, LocationId};

    fn transcript_for(mode: PromptMode) -> (Transcript, Prompt) {
        let prompt = Prompt::build(Language::English, mode);
        let mut t = Transcript::new(ImageId::new(LocationId(3), Heading::East), "m");
        for m in &prompt.messages {
            let resp = m
                .questions
                .iter()
                .map(|_| "No")
                .collect::<Vec<_>>()
                .join(", ");
            t.push(Exchange {
                request: m.text.clone(),
                response: resp.clone(),
                parsed: parse_response(&resp, Language::English, m.questions.len()),
            });
        }
        (t, prompt)
    }

    #[test]
    fn transcripts_align_with_their_prompts() {
        for mode in [PromptMode::Parallel, PromptMode::Sequential] {
            let (t, p) = transcript_for(mode);
            assert!(t.matches_prompt(&p), "{mode:?}");
            assert_eq!(t.answers().len(), 6);
            assert!(t.all_parsed());
        }
    }

    #[test]
    fn mismatched_prompt_detected() {
        let (t, _) = transcript_for(PromptMode::Parallel);
        let other = Prompt::build(Language::English, PromptMode::Sequential);
        assert!(!t.matches_prompt(&other));
    }

    #[test]
    fn transcript_serializes() {
        let (t, _) = transcript_for(PromptMode::Sequential);
        let json = serde_json::to_string(&t).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
