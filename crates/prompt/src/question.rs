//! The six presence questions, in every studied language.
//!
//! English texts are verbatim from the paper's Table II; the translations
//! follow Appendix B.

use nbhd_types::Indicator;

use crate::Language;

/// The order the paper's prompt asks the questions in (multilane first),
/// which differs from the canonical reporting order.
pub const PROMPT_ORDER: [Indicator; 6] = [
    Indicator::MultilaneRoad,
    Indicator::SingleLaneRoad,
    Indicator::Sidewalk,
    Indicator::Streetlight,
    Indicator::Powerline,
    Indicator::Apartment,
];

/// The question text for one indicator in one language.
///
/// ```
/// use nbhd_prompt::{question_text, Language};
/// use nbhd_types::Indicator;
///
/// let q = question_text(Indicator::Sidewalk, Language::English);
/// assert!(q.contains("sidewalk"));
/// ```
pub fn question_text(indicator: Indicator, language: Language) -> &'static str {
    match (language, indicator) {
        (Language::English, Indicator::MultilaneRoad) => {
            "Is the road shown in the image a multi-lane road (more than one lane per direction)? Respond only with 'Yes' or 'No'."
        }
        (Language::English, Indicator::SingleLaneRoad) => {
            "Is the road in the image a single-lane road (one lane per direction)? Respond only with 'Yes' or 'No'."
        }
        (Language::English, Indicator::Sidewalk) => {
            "Is there a sidewalk visible in the image? Respond only with 'Yes' or 'No'."
        }
        (Language::English, Indicator::Streetlight) => {
            "Is there a streetlight visible in the image? Respond only with 'Yes' or 'No'."
        }
        (Language::English, Indicator::Powerline) => {
            "Is there a power line visible in the image? Please respond with 'Yes' or 'No'."
        }
        (Language::English, Indicator::Apartment) => {
            "Is there an apartment visible in the image? Respond only with 'Yes' or 'No'."
        }
        (Language::Spanish, Indicator::MultilaneRoad) => {
            "¿La carretera que se muestra en la imagen tiene varios carriles (más de un carril por sentido)? Responda solo con 'Sí' o 'No'."
        }
        (Language::Spanish, Indicator::SingleLaneRoad) => {
            "¿La carretera que se muestra en la imagen tiene un solo carril (un carril por sentido)? Responda solo con 'Sí' o 'No'."
        }
        (Language::Spanish, Indicator::Sidewalk) => {
            "¿Se ve una acera en la imagen? Responda solo con 'Sí' o 'No'."
        }
        (Language::Spanish, Indicator::Streetlight) => {
            "¿Se ve un alumbrado público en la imagen? Responda solo con 'Sí' o 'No'."
        }
        (Language::Spanish, Indicator::Powerline) => {
            "¿Se ve un cable eléctrico en la imagen? Responda solo con 'Sí' o 'No'."
        }
        (Language::Spanish, Indicator::Apartment) => {
            "¿Se ve un apartamento en la imagen? Responda solo con 'Sí' o 'No'."
        }
        (Language::Chinese, Indicator::MultilaneRoad) => {
            "图片中显示的道路是多车道公路（每个方向有超过一条车道）吗？请仅回答\"是\"或\"否\"。"
        }
        (Language::Chinese, Indicator::SingleLaneRoad) => {
            "图片中的道路是单车道公路（每个方向只有一条车道）吗？请仅回答\"是\"或\"否\"。"
        }
        (Language::Chinese, Indicator::Sidewalk) => {
            "图片中是否有可见的路边人行道？仅回答\"是\"或\"否\"。"
        }
        (Language::Chinese, Indicator::Streetlight) => {
            "图片中是否有可见的路灯？仅回答\"是\"或\"否\"。"
        }
        (Language::Chinese, Indicator::Powerline) => {
            "图片中是否有可见的电线？请回答\"是\"或\"否\"。"
        }
        (Language::Chinese, Indicator::Apartment) => {
            "图片中是否有可见的公寓？仅回答\"是\"或\"否\"。"
        }
        (Language::Bengali, Indicator::MultilaneRoad) => {
            "ছবিতে দেখানো রাস্তাটি কি বহু-লেনের রাস্তা (প্রতি দিকে একাধিক লেন)? অনুগ্রহ করে কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        }
        (Language::Bengali, Indicator::SingleLaneRoad) => {
            "ছবিতে দেখানো রাস্তাটি কি এক-লেনের রাস্তা (প্রতি দিকে এক লেন)? অনুগ্রহ করে কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        }
        (Language::Bengali, Indicator::Sidewalk) => {
            "ছবিতে কি কোনও ফুটপাত দেখা যাচ্ছে? কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        }
        (Language::Bengali, Indicator::Streetlight) => {
            "ছবিতে কি কোনও রাস্তার আলো দেখা যাচ্ছে? কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        }
        (Language::Bengali, Indicator::Powerline) => {
            "ছবিতে কি কোনও বিদ্যুতের লাইন দেখা যাচ্ছে? অনুগ্রহ করে 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        }
        (Language::Bengali, Indicator::Apartment) => {
            "ছবিতে কি কোনও অ্যাপার্টমেন্ট দেখা যাচ্ছে? কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        }
    }
}

/// The format instruction preceding a parallel prompt ("Respond in this
/// format: Yes, No, No, Yes, No, Yes:").
pub fn format_instruction(language: Language) -> &'static str {
    match language {
        Language::English => "Respond in this format: Yes, No, No, Yes, No, Yes:",
        Language::Spanish => {
            "Por favor, responda exactamente en este formato y ningún otro: sí, no, no, sí, no, no."
        }
        Language::Chinese => "请严格按照以下格式回答，不得使用其他格式：是，否，否，是，是，否。",
        Language::Bengali => "ঠিক এই ফর্ম্যাটে উত্তর দিন: হ্যাঁ, না, না, হ্যাঁ, না, না।",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pair_has_text() {
        for lang in Language::ALL {
            for ind in Indicator::ALL {
                assert!(!question_text(ind, lang).is_empty(), "{lang} {ind}");
            }
        }
    }

    #[test]
    fn prompt_order_covers_all_indicators_once() {
        let set: nbhd_types::IndicatorSet = PROMPT_ORDER.into_iter().collect();
        assert_eq!(set, nbhd_types::IndicatorSet::FULL);
        assert_eq!(PROMPT_ORDER[0], Indicator::MultilaneRoad);
    }

    #[test]
    fn english_texts_match_the_paper() {
        assert!(question_text(Indicator::Powerline, Language::English).contains("power line"));
        assert!(
            question_text(Indicator::MultilaneRoad, Language::English)
                .contains("more than one lane per direction")
        );
    }

    #[test]
    fn texts_differ_between_languages() {
        for ind in Indicator::ALL {
            let en = question_text(ind, Language::English);
            for lang in [Language::Spanish, Language::Chinese, Language::Bengali] {
                assert_ne!(en, question_text(ind, lang), "{lang} {ind}");
            }
        }
    }
}
