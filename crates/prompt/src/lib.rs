//! Prompt engineering substrate: the study's presence questions in four
//! languages, parallel vs. sequential prompt packaging, robust response
//! parsing, and conversation transcripts.
//!
//! English question texts are verbatim from the paper's Table II; Spanish,
//! Chinese, and Bengali texts follow Appendix B.
//!
//! # Examples
//!
//! ```
//! use nbhd_prompt::{parse_response, Language, Prompt, PromptMode};
//!
//! let prompt = Prompt::build(Language::English, PromptMode::Parallel);
//! // ... send prompt.messages[0].text to a vision model with the image ...
//! let parsed = parse_response("Yes, No, No, Yes, No, Yes", prompt.language, 6);
//! let presence = parsed.to_presence(&prompt.question_order());
//! assert_eq!(presence.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lang;
mod parse;
mod question;
mod template;
mod transcript;

pub use lang::Language;
pub use parse::{parse_response, ParsedAnswers};
pub use question::{format_instruction, question_text, PROMPT_ORDER};
pub use template::{Prompt, PromptMessage, PromptMode};
pub use transcript::{Exchange, Transcript};
