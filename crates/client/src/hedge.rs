//! Request hedging: fire a backup attempt when the primary is slow.
//!
//! Tail-latency hedging issues a second, identical request once the first
//! has been outstanding longer than a latency threshold, and takes
//! whichever completes first. Under the virtual clock this is modeled
//! exactly: the backup "starts" at the threshold, so its completion time is
//! `after_ms + backup_latency`, and the winner is whichever finishes
//! earlier in virtual time.

use crate::{ModelRequest, ModelResponse, RetryPolicy, Transport, TransportError};

/// When and whether to hedge a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Fire the backup once the primary has been outstanding this long
    /// (virtual ms). Pick a high latency percentile of the target model so
    /// hedges stay rare in the healthy case.
    pub after_ms: u64,
}

impl HedgePolicy {
    /// A policy firing after a fixed threshold.
    pub fn after_ms(after_ms: u64) -> HedgePolicy {
        HedgePolicy { after_ms }
    }

    /// Derives the threshold from a model profile's latency distribution.
    ///
    /// The simulated transport draws latency uniformly in
    /// `[0.6, 1.4] x profile mean` (plus a small per-message cost), so
    /// `quantile` maps linearly onto that band; `0.95` hedges only the
    /// slowest ~5% of requests.
    pub fn for_profile(profile: &nbhd_vlm::ModelProfile, quantile: f64) -> HedgePolicy {
        let q = quantile.clamp(0.0, 1.0);
        HedgePolicy {
            after_ms: (profile.latency_ms * (0.6 + 0.8 * q) + 40.0) as u64,
        }
    }
}

/// The outcome of one (possibly hedged) attempt.
#[derive(Debug)]
pub(crate) struct HedgedAttempt {
    /// The winning result.
    pub result: Result<ModelResponse, TransportError>,
    /// Virtual milliseconds the attempt consumed end-to-end.
    pub elapsed_ms: u64,
    /// Whether the backup fired.
    pub fired: bool,
    /// Whether the backup's answer won.
    pub won: bool,
}

/// Runs one attempt through the transport, firing a hedge when the primary
/// is slower than the policy threshold (or fails retryably).
pub(crate) fn hedged_attempt(
    transport: &dyn Transport,
    request: &ModelRequest,
    hedge: Option<&HedgePolicy>,
    policy: &RetryPolicy,
) -> HedgedAttempt {
    let primary = transport.send(request);
    let primary_ms = completion_ms(&primary, policy);
    let Some(hedge) = hedge else {
        return HedgedAttempt {
            result: primary,
            elapsed_ms: primary_ms,
            fired: false,
            won: false,
        };
    };
    // No hedge when the primary beat the threshold, failed so fast there
    // was nothing to race (fail-fast breaker rejections), or failed in a
    // way a second identical request cannot fix.
    let hopeless = matches!(&primary, Err(err) if !err.is_retryable());
    if primary_ms <= hedge.after_ms || hopeless {
        return HedgedAttempt {
            result: primary,
            elapsed_ms: primary_ms,
            fired: false,
            won: false,
        };
    }
    let backup = transport.send(request);
    let backup_ms = hedge.after_ms + completion_ms(&backup, policy);
    match (primary, backup) {
        (Ok(primary), Ok(mut backup)) => {
            if backup_ms < primary_ms {
                backup.latency_ms = backup_ms as f64;
                HedgedAttempt {
                    result: Ok(backup),
                    elapsed_ms: backup_ms,
                    fired: true,
                    won: true,
                }
            } else {
                HedgedAttempt {
                    result: Ok(primary),
                    elapsed_ms: primary_ms,
                    fired: true,
                    won: false,
                }
            }
        }
        (Ok(primary), Err(_)) => HedgedAttempt {
            result: Ok(primary),
            elapsed_ms: primary_ms,
            fired: true,
            won: false,
        },
        (Err(_), Ok(mut backup)) => {
            backup.latency_ms = backup_ms as f64;
            HedgedAttempt {
                result: Ok(backup),
                elapsed_ms: backup_ms,
                fired: true,
                won: true,
            }
        }
        (Err(primary), Err(_)) => HedgedAttempt {
            // both lanes failed: report the primary's error, but the caller
            // waited for the slower of the two
            elapsed_ms: primary_ms.max(backup_ms),
            result: Err(primary),
            fired: true,
            won: false,
        },
    }
}

/// How long an attempt takes to resolve, in virtual milliseconds: the
/// response latency on success, or an honest failure charge — the timeout
/// budget for timeouts, a server round-trip for 4xx/5xx/429, and nothing
/// for breaker fail-fasts (they never leave the client).
fn completion_ms(result: &Result<ModelResponse, TransportError>, policy: &RetryPolicy) -> u64 {
    match result {
        Ok(response) => response.latency_ms as u64,
        Err(err) => policy.failure_charge_ms(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A scripted transport with per-call latencies and failures.
    struct Scripted {
        outcomes: Vec<Result<f64, TransportError>>,
        calls: AtomicU32,
    }

    impl Transport for Scripted {
        fn model_name(&self) -> &str {
            "scripted"
        }
        fn send(&self, _request: &ModelRequest) -> Result<ModelResponse, TransportError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst) as usize;
            match &self.outcomes[n.min(self.outcomes.len() - 1)] {
                Ok(latency_ms) => Ok(ModelResponse {
                    texts: vec![format!("call-{n}")],
                    latency_ms: *latency_ms,
                    input_tokens: 10,
                    output_tokens: 1,
                }),
                Err(err) => Err(err.clone()),
            }
        }
    }

    fn request() -> ModelRequest {
        use nbhd_geo::{RoadClass, Zoning};
        use nbhd_prompt::{Language, Prompt, PromptMode};
        use nbhd_scene::{SceneGenerator, ViewKind};
        use nbhd_types::{Heading, ImageId, LocationId};
        let spec = SceneGenerator::new(5).compose_raw(
            ImageId::new(LocationId(0), Heading::North),
            Zoning::Urban,
            RoadClass::Multilane,
            ViewKind::AlongRoad,
        );
        ModelRequest {
            context: nbhd_vlm::ImageContext::from_scene(&spec, 5),
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: nbhd_vlm::SamplerParams::default(),
        }
    }

    fn run(
        outcomes: Vec<Result<f64, TransportError>>,
        hedge: Option<HedgePolicy>,
    ) -> (HedgedAttempt, u32) {
        let t = Scripted {
            outcomes,
            calls: AtomicU32::new(0),
        };
        let attempt = hedged_attempt(&t, &request(), hedge.as_ref(), &RetryPolicy::default());
        (attempt, t.calls.load(Ordering::SeqCst))
    }

    #[test]
    fn fast_primary_never_hedges() {
        let (attempt, calls) = run(vec![Ok(100.0)], Some(HedgePolicy::after_ms(500)));
        assert!(!attempt.fired);
        assert_eq!(attempt.elapsed_ms, 100);
        assert_eq!(calls, 1);
    }

    #[test]
    fn slow_primary_fires_backup_that_wins() {
        // primary 2000ms; backup starts at 500 and takes 300 -> done at 800
        let (attempt, calls) = run(
            vec![Ok(2000.0), Ok(300.0)],
            Some(HedgePolicy::after_ms(500)),
        );
        assert!(attempt.fired && attempt.won);
        assert_eq!(attempt.elapsed_ms, 800);
        assert_eq!(attempt.result.unwrap().texts[0], "call-1");
        assert_eq!(calls, 2);
    }

    #[test]
    fn slow_backup_loses_to_primary() {
        // primary 900ms; backup starts at 500 and takes 800 -> done at 1300
        let (attempt, _) = run(
            vec![Ok(900.0), Ok(800.0)],
            Some(HedgePolicy::after_ms(500)),
        );
        assert!(attempt.fired && !attempt.won);
        assert_eq!(attempt.elapsed_ms, 900);
        assert_eq!(attempt.result.unwrap().texts[0], "call-0");
    }

    #[test]
    fn failed_primary_is_rescued_by_hedge() {
        let (attempt, _) = run(
            vec![Err(TransportError::Timeout), Ok(200.0)],
            Some(HedgePolicy::after_ms(500)),
        );
        assert!(attempt.fired && attempt.won);
        assert_eq!(attempt.elapsed_ms, 500 + 200);
        assert!(attempt.result.is_ok());
    }

    #[test]
    fn bad_request_is_not_hedged() {
        let (attempt, calls) = run(
            vec![Err(TransportError::BadRequest("nope".into()))],
            Some(HedgePolicy::after_ms(1)),
        );
        assert!(!attempt.fired);
        assert_eq!(calls, 1);
        assert!(attempt.result.is_err());
    }

    #[test]
    fn no_policy_means_no_hedge() {
        let (attempt, calls) = run(vec![Ok(10_000.0)], None);
        assert!(!attempt.fired);
        assert_eq!(calls, 1);
        assert_eq!(attempt.elapsed_ms, 10_000);
    }

    #[test]
    fn profile_quantile_maps_to_latency_band() {
        let profile = nbhd_vlm::gemini_15_pro();
        let p50 = HedgePolicy::for_profile(&profile, 0.5);
        let p95 = HedgePolicy::for_profile(&profile, 0.95);
        assert!(p95.after_ms > p50.after_ms);
        assert_eq!(p50.after_ms, (profile.latency_ms + 40.0) as u64);
    }
}
