//! Scripted chaos fault schedules driven by the virtual clock.
//!
//! Where [`crate::FaultProfile`] models i.i.d. per-attempt faults, a
//! [`FaultSchedule`] scripts *regimes*: windows of virtual time during which
//! a model (or a correlated set of models) is fully down, browned out with
//! elevated 5xx rates and latency inflation, or drowning in 429s. A
//! [`ScheduledTransport`] applies the schedule on top of any inner
//! transport, so regimes compose with the base fault profile and all
//! existing behavior is preserved outside the scripted windows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nbhd_types::rng::{child_seed_n, rng_from};
use rand::Rng;

use crate::{ModelRequest, ModelResponse, Transport, TransportError, VirtualClock};

/// What a scripted fault window does to requests inside it.
#[derive(Debug, Clone, PartialEq)]
pub enum RegimeKind {
    /// The model is fully down: every request fails with a 5xx.
    Outage,
    /// Sustained brownout: an elevated 5xx rate and inflated latency.
    Brownout {
        /// Probability a request fails with a 5xx.
        server_error: f64,
        /// Multiplier applied to successful responses' latency.
        latency_factor: f64,
    },
    /// A rate-limit storm: a fraction of requests bounce with 429.
    RateLimitStorm {
        /// Probability a request is rejected with 429.
        reject: f64,
        /// The `retry_after_ms` hint attached to rejections.
        retry_after_ms: u64,
    },
}

/// One timed fault regime: a half-open window `[start_ms, end_ms)` of
/// virtual time, the fault behavior inside it, and which models it hits.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRegime {
    /// Window start, virtual ms (inclusive).
    pub start_ms: u64,
    /// Window end, virtual ms (exclusive).
    pub end_ms: u64,
    /// Fault behavior inside the window.
    pub kind: RegimeKind,
    /// Model names the regime applies to; `None` hits every model, which
    /// scripts a cross-model correlated failure window.
    pub models: Option<Vec<String>>,
}

impl FaultRegime {
    /// A full outage window for every model.
    pub fn outage(start_ms: u64, end_ms: u64) -> FaultRegime {
        FaultRegime {
            start_ms,
            end_ms,
            kind: RegimeKind::Outage,
            models: None,
        }
    }

    /// A brownout window for every model.
    pub fn brownout(start_ms: u64, end_ms: u64, server_error: f64, latency_factor: f64) -> FaultRegime {
        FaultRegime {
            start_ms,
            end_ms,
            kind: RegimeKind::Brownout {
                server_error,
                latency_factor,
            },
            models: None,
        }
    }

    /// A rate-limit storm window for every model.
    pub fn rate_limit_storm(
        start_ms: u64,
        end_ms: u64,
        reject: f64,
        retry_after_ms: u64,
    ) -> FaultRegime {
        FaultRegime {
            start_ms,
            end_ms,
            kind: RegimeKind::RateLimitStorm {
                reject,
                retry_after_ms,
            },
            models: None,
        }
    }

    /// Restricts the regime to the named models.
    #[must_use]
    pub fn for_models(mut self, models: &[&str]) -> FaultRegime {
        self.models = Some(models.iter().map(|m| (*m).to_owned()).collect());
        self
    }

    /// Whether this regime is active for a model at a virtual time.
    pub fn applies_to(&self, model: &str, now_ms: u64) -> bool {
        if now_ms < self.start_ms || now_ms >= self.end_ms {
            return false;
        }
        match &self.models {
            None => true,
            Some(names) => names.iter().any(|n| n == model),
        }
    }
}

/// An ordered list of timed fault regimes.
///
/// When several regimes overlap for the same model, the first one listed
/// wins — schedules read top-down like a script.
///
/// ```
/// use nbhd_client::{FaultRegime, FaultSchedule, RegimeKind};
///
/// let schedule = FaultSchedule::new()
///     .with(FaultRegime::outage(10_000, 40_000).for_models(&["grok-2"]))
///     .with(FaultRegime::brownout(20_000, 30_000, 0.3, 2.5));
/// assert!(schedule.active_at("grok-2", 15_000).is_some());
/// assert!(schedule.active_at("claude-3.7", 15_000).is_none());
/// // inside the correlated brownout every model is hit
/// assert!(matches!(
///     schedule.active_at("claude-3.7", 25_000).unwrap().kind,
///     RegimeKind::Brownout { .. }
/// ));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    regimes: Vec<FaultRegime>,
}

impl FaultSchedule {
    /// An empty schedule (no scripted faults).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Appends a regime.
    #[must_use]
    pub fn with(mut self, regime: FaultRegime) -> FaultSchedule {
        self.regimes.push(regime);
        self
    }

    /// Whether the schedule scripts any regimes at all.
    pub fn is_empty(&self) -> bool {
        self.regimes.is_empty()
    }

    /// The scripted regimes, in priority order.
    pub fn regimes(&self) -> &[FaultRegime] {
        &self.regimes
    }

    /// The first regime active for `model` at `now_ms`, if any.
    pub fn active_at(&self, model: &str, now_ms: u64) -> Option<&FaultRegime> {
        self.regimes.iter().find(|r| r.applies_to(model, now_ms))
    }
}

/// How a [`ScheduledTransport`] keys its stochastic regime draws
/// (brownout 5xx, storm rejects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DrawKeying {
    /// Key draws on a per-transport attempt counter (the default):
    /// retries of the same request see fresh i.i.d. draws, but the
    /// counter races under a parallel fan-out, so *which* request a
    /// fault lands on depends on scheduling.
    #[default]
    PerAttempt,
    /// Key draws on the request's image identity and the active regime's
    /// window start: a request's fault outcome is a pure function of
    /// `(seed, image, window)`, invariant under worker count and send
    /// order. Single-attempt callers that need fault outcomes on the
    /// deterministic surface (e.g. a serving layer that owns admission
    /// and retries itself) opt in via
    /// [`ScheduledTransport::with_image_keyed_draws`].
    PerImage,
}

/// A [`Transport`] decorator applying a [`FaultSchedule`] on top of an
/// inner transport, reading the shared virtual clock to decide which
/// regime (if any) governs each attempt.
///
/// Stochastic regime draws (brownout 5xx, storm rejects) derive from the
/// `u64` seed and, per [`DrawKeying`], either a per-attempt counter or
/// the request's image identity.
pub struct ScheduledTransport {
    inner: Arc<dyn Transport>,
    schedule: FaultSchedule,
    clock: Arc<VirtualClock>,
    seed: u64,
    keying: DrawKeying,
    attempts: AtomicU64,
}

impl ScheduledTransport {
    /// Wraps a transport with a schedule.
    pub fn new(
        inner: Arc<dyn Transport>,
        schedule: FaultSchedule,
        clock: Arc<VirtualClock>,
        seed: u64,
    ) -> ScheduledTransport {
        ScheduledTransport {
            inner,
            schedule,
            clock,
            seed,
            keying: DrawKeying::default(),
            attempts: AtomicU64::new(0),
        }
    }

    /// Switches regime draws to [`DrawKeying::PerImage`]: fault outcomes
    /// become a pure function of `(seed, image, regime window)`, so they
    /// stay identical at any worker count.
    #[must_use]
    pub fn with_image_keyed_draws(mut self) -> ScheduledTransport {
        self.keying = DrawKeying::PerImage;
        self
    }

    /// The seed governing one stochastic regime draw.
    fn draw_seed(&self, request: &ModelRequest, regime: &FaultRegime, attempt: u64) -> u64 {
        match self.keying {
            DrawKeying::PerAttempt => child_seed_n(self.seed, "schedule", attempt),
            DrawKeying::PerImage => child_seed_n(
                child_seed_n(self.seed, "schedule-image", request.context.image.key()),
                "window",
                regime.start_ms,
            ),
        }
    }

    /// Attempts that reached this layer — i.e. traffic that would have hit
    /// the real API, whether a regime shed it or the inner transport
    /// answered. This is the "wasted attempts against a dead model" number
    /// the circuit breaker is meant to cut.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }
}

impl Transport for ScheduledTransport {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn send(&self, request: &ModelRequest) -> Result<ModelResponse, TransportError> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ms();
        let Some(regime) = self.schedule.active_at(self.inner.model_name(), now) else {
            return self.inner.send(request);
        };
        match &regime.kind {
            RegimeKind::Outage => Err(TransportError::ServerError),
            RegimeKind::RateLimitStorm {
                reject,
                retry_after_ms,
            } => {
                let mut rng = rng_from(self.draw_seed(request, regime, attempt));
                if rng.random::<f64>() < *reject {
                    Err(TransportError::RateLimited {
                        retry_after_ms: *retry_after_ms,
                    })
                } else {
                    self.inner.send(request)
                }
            }
            RegimeKind::Brownout {
                server_error,
                latency_factor,
            } => {
                let mut rng = rng_from(self.draw_seed(request, regime, attempt));
                if rng.random::<f64>() < *server_error {
                    Err(TransportError::ServerError)
                } else {
                    self.inner.send(request).map(|mut response| {
                        response.latency_ms *= latency_factor;
                        response
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulatedTransport;
    use nbhd_geo::{RoadClass, Zoning};
    use nbhd_prompt::{Language, Prompt, PromptMode};
    use nbhd_scene::{SceneGenerator, ViewKind};
    use nbhd_types::{Heading, ImageId, LocationId};
    use nbhd_vlm::{gemini_15_pro, ImageContext, SamplerParams, VisionModel};

    fn request(loc: u64) -> ModelRequest {
        let spec = SceneGenerator::new(5).compose_raw(
            ImageId::new(LocationId(loc), Heading::North),
            Zoning::Urban,
            RoadClass::Multilane,
            ViewKind::AlongRoad,
        );
        ModelRequest {
            context: ImageContext::from_scene(&spec, 5),
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: SamplerParams::default(),
        }
    }

    fn scheduled(schedule: FaultSchedule, clock: &Arc<VirtualClock>) -> ScheduledTransport {
        let inner = Arc::new(SimulatedTransport::new(
            VisionModel::new(gemini_15_pro(), 5),
            7,
        ));
        ScheduledTransport::new(inner, schedule, Arc::clone(clock), 11)
    }

    #[test]
    fn outage_window_fails_everything_then_recovers() {
        let clock = Arc::new(VirtualClock::new());
        let t = scheduled(
            FaultSchedule::new().with(FaultRegime::outage(0, 10_000)),
            &clock,
        );
        for loc in 0..5 {
            assert_eq!(t.send(&request(loc)), Err(TransportError::ServerError));
        }
        clock.advance_ms(10_000);
        for loc in 0..5 {
            assert!(t.send(&request(loc)).is_ok(), "after the window");
        }
        assert_eq!(t.attempts(), 10);
    }

    #[test]
    fn outage_targets_only_named_models() {
        let clock = Arc::new(VirtualClock::new());
        let t = scheduled(
            FaultSchedule::new().with(FaultRegime::outage(0, u64::MAX).for_models(&["grok-2"])),
            &clock,
        );
        // the wrapped transport is gemini, so the grok regime never applies
        assert!(t.send(&request(0)).is_ok());
    }

    #[test]
    fn brownout_inflates_latency_and_injects_errors() {
        let clock = Arc::new(VirtualClock::new());
        let clean = scheduled(FaultSchedule::new(), &clock);
        let browned = scheduled(
            FaultSchedule::new().with(FaultRegime::brownout(0, u64::MAX, 0.4, 3.0)),
            &clock,
        );
        let mut failures = 0usize;
        let mut clean_latency = 0.0f64;
        let mut brown_latency = 0.0f64;
        let mut brown_ok = 0usize;
        for loc in 0..200 {
            clean_latency += clean.send(&request(loc % 10)).unwrap().latency_ms;
            match browned.send(&request(loc % 10)) {
                Ok(r) => {
                    brown_latency += r.latency_ms;
                    brown_ok += 1;
                }
                Err(e) => {
                    assert_eq!(e, TransportError::ServerError);
                    failures += 1;
                }
            }
        }
        assert!(
            (50..=110).contains(&failures),
            "~40% of 200 should fail, got {failures}"
        );
        let clean_mean = clean_latency / 200.0;
        let brown_mean = brown_latency / brown_ok as f64;
        assert!(
            brown_mean > clean_mean * 2.0,
            "brownout latency {brown_mean:.0} vs clean {clean_mean:.0}"
        );
    }

    #[test]
    fn storm_rejects_with_the_configured_hint() {
        let clock = Arc::new(VirtualClock::new());
        let t = scheduled(
            FaultSchedule::new().with(FaultRegime::rate_limit_storm(0, u64::MAX, 0.5, 1234)),
            &clock,
        );
        let mut rejected = 0usize;
        for loc in 0..200 {
            if let Err(e) = t.send(&request(loc % 10)) {
                assert_eq!(e, TransportError::RateLimited { retry_after_ms: 1234 });
                rejected += 1;
            }
        }
        assert!((70..=130).contains(&rejected), "~50% of 200, got {rejected}");
    }

    #[test]
    fn image_keyed_draws_are_send_order_invariant() {
        let clock = Arc::new(VirtualClock::new());
        let storm = || {
            FaultSchedule::new().with(FaultRegime::rate_limit_storm(0, u64::MAX, 0.5, 500))
        };
        let forward = scheduled(storm(), &clock).with_image_keyed_draws();
        let backward = scheduled(storm(), &clock).with_image_keyed_draws();
        let locs: Vec<u64> = (0..40).collect();
        let mut by_loc_forward = std::collections::BTreeMap::new();
        for &loc in &locs {
            by_loc_forward.insert(loc, forward.send(&request(loc)).is_ok());
        }
        // the same seed sees the same per-image outcomes in any send
        // order — this is what keeps scheduled faults on the
        // deterministic surface for single-attempt callers
        for &loc in locs.iter().rev() {
            assert_eq!(
                backward.send(&request(loc)).is_ok(),
                by_loc_forward[&loc],
                "image {loc} outcome must not depend on send order"
            );
        }
        let rejected = by_loc_forward.values().filter(|ok| !**ok).count();
        assert!(
            (10..=30).contains(&rejected),
            "~50% of 40 should bounce, got {rejected}"
        );
        // per-attempt keying keeps its historical racing behavior
        assert_eq!(scheduled(storm(), &clock).keying, DrawKeying::PerAttempt);
    }

    #[test]
    fn first_listed_regime_wins_overlaps() {
        let schedule = FaultSchedule::new()
            .with(FaultRegime::outage(0, 1_000))
            .with(FaultRegime::brownout(0, 1_000, 0.1, 2.0));
        assert_eq!(
            schedule.active_at("any", 500).unwrap().kind,
            RegimeKind::Outage
        );
        assert!(schedule.active_at("any", 1_000).is_none(), "end exclusive");
    }
}
