//! Token-bucket rate limiting over a virtual clock.
//!
//! The executor accounts for time virtually (no real sleeping), so tests
//! and benchmarks of the rate limiter are instantaneous and deterministic.
//!
//! The clock itself lives in `nbhd-obs` (it is the run-wide time source
//! for span tracing too); it is re-exported here so client callers keep
//! their `nbhd_client::VirtualClock` spelling.

use std::sync::Arc;

use parking_lot::Mutex;

pub use nbhd_obs::VirtualClock;

/// A token bucket: `capacity` burst, refilled at `refill_per_sec`.
///
/// ```
/// use std::sync::Arc;
/// use nbhd_client::{TokenBucket, VirtualClock};
///
/// let clock = Arc::new(VirtualClock::new());
/// let bucket = TokenBucket::new(2, 1.0, clock.clone());
/// assert_eq!(bucket.try_acquire(), Ok(()));
/// assert_eq!(bucket.try_acquire(), Ok(()));
/// assert!(bucket.try_acquire().is_err()); // burst exhausted
/// clock.advance_ms(1000);
/// assert_eq!(bucket.try_acquire(), Ok(())); // one token refilled
/// ```
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    clock: Arc<VirtualClock>,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics when capacity is zero or the refill rate is non-positive.
    pub fn new(capacity: u32, refill_per_sec: f64, clock: Arc<VirtualClock>) -> TokenBucket {
        assert!(capacity > 0, "capacity must be positive");
        assert!(refill_per_sec > 0.0, "refill rate must be positive");
        TokenBucket {
            capacity: capacity as f64,
            refill_per_sec,
            state: Mutex::new(BucketState {
                tokens: capacity as f64,
                last_ms: clock.now_ms(),
            }),
            clock,
        }
    }

    /// Credits the tokens accrued since `last_ms`. Reads the clock
    /// *under the state lock* so a credit can never miss an advance paid
    /// by another thread holding the lock.
    fn refill(&self, state: &mut BucketState) {
        let now = self.clock.now_ms();
        if now > state.last_ms {
            let elapsed = (now - state.last_ms) as f64 / 1000.0;
            state.tokens = (state.tokens + elapsed * self.refill_per_sec).min(self.capacity);
            state.last_ms = now;
        }
    }

    /// Attempts to take one token.
    ///
    /// # Errors
    ///
    /// Returns the number of milliseconds until a token will be available.
    pub fn try_acquire(&self) -> Result<(), u64> {
        let mut state = self.state.lock();
        self.refill(&mut state);
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - state.tokens;
            Err((deficit / self.refill_per_sec * 1000.0).ceil() as u64)
        }
    }

    /// Acquires a token, advancing the virtual clock through any waits.
    ///
    /// The wait is serialized through the bucket state: the whole
    /// refill-or-pay loop runs under the state lock, so exactly one
    /// waiter advances the clock for each token deficit while the
    /// others block on the lock and then re-check a refilled bucket.
    /// (Previously every concurrent waiter charged its own full wait to
    /// the shared clock, so N waiters paid ~N× the virtual time a
    /// serial run pays for the same acquisitions.)
    pub fn acquire_blocking(&self) {
        let mut state = self.state.lock();
        loop {
            self.refill(&mut state);
            if state.tokens >= 1.0 {
                state.tokens -= 1.0;
                return;
            }
            let deficit = 1.0 - state.tokens;
            let wait_ms = ((deficit / self.refill_per_sec * 1000.0).ceil() as u64).max(1);
            self.clock.advance_ms(wait_ms);
            // looping refills from the advanced clock; concurrent
            // advances by other clock users are credited too
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_rate_is_bounded_by_refill() {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(5, 10.0, clock.clone());
        // drain 100 tokens via blocking acquire; virtual time must cover
        // (100 - burst) / rate = 9.5 seconds
        for _ in 0..100 {
            bucket.acquire_blocking();
        }
        let elapsed = clock.now_ms();
        assert!(elapsed >= 9_400, "elapsed {elapsed} ms");
        assert!(elapsed <= 11_000, "elapsed {elapsed} ms");
    }

    #[test]
    fn concurrent_waiters_pay_each_deficit_once() {
        // the multi-worker twin of sustained_rate_is_bounded_by_refill:
        // 100 acquisitions spread over 4 workers must charge exactly the
        // serial bound of virtual time, not ~4x it (the old bug: every
        // waiter advanced the shared clock by its own wait)
        let serial_elapsed = {
            let clock = Arc::new(VirtualClock::new());
            let bucket = TokenBucket::new(5, 10.0, clock.clone());
            for _ in 0..100 {
                bucket.acquire_blocking();
            }
            clock.now_ms()
        };
        let parallel_elapsed = {
            let clock = Arc::new(VirtualClock::new());
            let bucket = TokenBucket::new(5, 10.0, clock.clone());
            let items: Vec<u32> = (0..100).collect();
            let _ = nbhd_exec::par_map_with(nbhd_exec::Parallelism::fixed(4), &items, |_| {
                bucket.acquire_blocking()
            });
            clock.now_ms()
        };
        assert_eq!(
            parallel_elapsed, serial_elapsed,
            "4 workers must charge the serial virtual-time bound"
        );
        assert!(serial_elapsed >= 9_400, "elapsed {serial_elapsed} ms");
        assert!(serial_elapsed <= 11_000, "elapsed {serial_elapsed} ms");
    }

    #[test]
    fn wait_hint_is_accurate() {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(1, 2.0, clock.clone());
        bucket.try_acquire().unwrap();
        let wait = bucket.try_acquire().unwrap_err();
        assert!((450..=550).contains(&wait), "wait {wait} ms for 2/sec");
        clock.advance_ms(wait);
        assert!(bucket.try_acquire().is_ok());
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(3, 100.0, clock.clone());
        clock.advance_ms(60_000);
        // after a long idle period, only `capacity` tokens are available
        assert!(bucket.try_acquire().is_ok());
        assert!(bucket.try_acquire().is_ok());
        assert!(bucket.try_acquire().is_ok());
        assert!(bucket.try_acquire().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TokenBucket::new(0, 1.0, Arc::new(VirtualClock::new()));
    }
}
