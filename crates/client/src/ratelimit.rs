//! Token-bucket rate limiting over a virtual clock.
//!
//! The executor accounts for time virtually (no real sleeping), so tests
//! and benchmarks of the rate limiter are instantaneous and deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically advancing virtual clock, shared across workers.
///
/// ```
/// use nbhd_client::VirtualClock;
/// let clock = VirtualClock::new();
/// clock.advance_ms(250);
/// assert_eq!(clock.now_ms(), 250);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    /// Advances the clock, returning the new time.
    pub fn advance_ms(&self, delta: u64) -> u64 {
        self.now_ms.fetch_add(delta, Ordering::SeqCst) + delta
    }
}

/// A token bucket: `capacity` burst, refilled at `refill_per_sec`.
///
/// ```
/// use std::sync::Arc;
/// use nbhd_client::{TokenBucket, VirtualClock};
///
/// let clock = Arc::new(VirtualClock::new());
/// let bucket = TokenBucket::new(2, 1.0, clock.clone());
/// assert_eq!(bucket.try_acquire(), Ok(()));
/// assert_eq!(bucket.try_acquire(), Ok(()));
/// assert!(bucket.try_acquire().is_err()); // burst exhausted
/// clock.advance_ms(1000);
/// assert_eq!(bucket.try_acquire(), Ok(())); // one token refilled
/// ```
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    clock: Arc<VirtualClock>,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics when capacity is zero or the refill rate is non-positive.
    pub fn new(capacity: u32, refill_per_sec: f64, clock: Arc<VirtualClock>) -> TokenBucket {
        assert!(capacity > 0, "capacity must be positive");
        assert!(refill_per_sec > 0.0, "refill rate must be positive");
        TokenBucket {
            capacity: capacity as f64,
            refill_per_sec,
            state: Mutex::new(BucketState {
                tokens: capacity as f64,
                last_ms: clock.now_ms(),
            }),
            clock,
        }
    }

    /// Attempts to take one token.
    ///
    /// # Errors
    ///
    /// Returns the number of milliseconds until a token will be available.
    pub fn try_acquire(&self) -> Result<(), u64> {
        let now = self.clock.now_ms();
        let mut state = self.state.lock();
        let elapsed = now.saturating_sub(state.last_ms) as f64 / 1000.0;
        state.tokens = (state.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        state.last_ms = now;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - state.tokens;
            Err((deficit / self.refill_per_sec * 1000.0).ceil() as u64)
        }
    }

    /// Acquires a token, advancing the virtual clock through any waits.
    pub fn acquire_blocking(&self) {
        loop {
            match self.try_acquire() {
                Ok(()) => return,
                Err(wait_ms) => {
                    self.clock.advance_ms(wait_ms.max(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_rate_is_bounded_by_refill() {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(5, 10.0, clock.clone());
        // drain 100 tokens via blocking acquire; virtual time must cover
        // (100 - burst) / rate = 9.5 seconds
        for _ in 0..100 {
            bucket.acquire_blocking();
        }
        let elapsed = clock.now_ms();
        assert!(elapsed >= 9_400, "elapsed {elapsed} ms");
        assert!(elapsed <= 11_000, "elapsed {elapsed} ms");
    }

    #[test]
    fn wait_hint_is_accurate() {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(1, 2.0, clock.clone());
        bucket.try_acquire().unwrap();
        let wait = bucket.try_acquire().unwrap_err();
        assert!((450..=550).contains(&wait), "wait {wait} ms for 2/sec");
        clock.advance_ms(wait);
        assert!(bucket.try_acquire().is_ok());
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(3, 100.0, clock.clone());
        clock.advance_ms(60_000);
        // after a long idle period, only `capacity` tokens are available
        assert!(bucket.try_acquire().is_ok());
        assert!(bucket.try_acquire().is_ok());
        assert!(bucket.try_acquire().is_ok());
        assert!(bucket.try_acquire().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TokenBucket::new(0, 1.0, Arc::new(VirtualClock::new()));
    }
}
