//! The multi-model ensemble runner: queries every model about every image
//! and majority-votes the designated voters (the paper's Sec. IV-C2 setup).

use std::collections::BTreeMap;
use std::sync::Arc;

use nbhd_eval::{majority_vote, TiePolicy};
use nbhd_prompt::{parse_response, Prompt};
use nbhd_types::IndicatorSet;
use nbhd_vlm::{ImageContext, ModelProfile, SamplerParams, VisionModel};

use crate::{
    BatchExecutor, CostMeter, ExecutorConfig, FaultProfile, ModelRequest, SimulatedTransport,
    VirtualClock,
};

/// One model's answers across a batch of images.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAnswers {
    /// Presence predictions per image (order matches the input batch).
    pub presence: Vec<IndicatorSet>,
    /// Images whose response failed to parse completely.
    pub parse_failures: usize,
    /// Images whose request failed at the transport level.
    pub transport_failures: usize,
}

/// The ensemble's batch outcome.
#[derive(Debug, Clone)]
pub struct EnsembleOutcome {
    /// Per-model answers keyed by model name.
    pub per_model: BTreeMap<String, ModelAnswers>,
    /// Majority-voted presence per image (voters only).
    pub voted: Vec<IndicatorSet>,
}

/// Queries a set of simulated models and votes the designated subset.
pub struct Ensemble {
    members: Vec<Member>,
    config: ExecutorConfig,
    clock: Arc<VirtualClock>,
    meter: Arc<CostMeter>,
}

struct Member {
    profile: ModelProfile,
    transport: Arc<SimulatedTransport>,
    voting: bool,
}

impl Ensemble {
    /// Builds an ensemble over model profiles; `voting` selects which
    /// members participate in the majority vote (the paper votes Gemini,
    /// Claude, and Grok).
    pub fn new(
        profiles: Vec<(ModelProfile, bool)>,
        survey_seed: u64,
        faults: FaultProfile,
        config: ExecutorConfig,
    ) -> Ensemble {
        let members = profiles
            .into_iter()
            .enumerate()
            .map(|(i, (profile, voting))| Member {
                transport: Arc::new(
                    SimulatedTransport::new(
                        VisionModel::new(profile.clone(), survey_seed),
                        survey_seed ^ (i as u64 + 1),
                    )
                    .with_faults(faults),
                ),
                profile,
                voting,
            })
            .collect();
        Ensemble {
            members,
            config,
            clock: Arc::new(VirtualClock::new()),
            meter: Arc::new(CostMeter::new()),
        }
    }

    /// The paper's four models with its top-three voting set.
    pub fn paper_setup(survey_seed: u64) -> Ensemble {
        let profiles = vec![
            (nbhd_vlm::chatgpt_4o_mini(), false),
            (nbhd_vlm::gemini_15_pro(), true),
            (nbhd_vlm::claude_37(), true),
            (nbhd_vlm::grok_2(), true),
        ];
        Ensemble::new(
            profiles,
            survey_seed,
            FaultProfile::NONE,
            ExecutorConfig::default(),
        )
    }

    /// The shared cost meter.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Runs the full survey: every member answers every image; voters'
    /// answers are majority-voted per image. Transport or parse failures
    /// contribute an empty presence set (the harness convention: an
    /// unanswered question counts as "absent").
    pub fn survey(
        &self,
        contexts: &[ImageContext],
        prompt: &Prompt,
        params: &SamplerParams,
    ) -> EnsembleOutcome {
        let mut per_model = BTreeMap::new();
        let mut voter_answers: Vec<(String, Vec<IndicatorSet>)> = Vec::new();
        for member in &self.members {
            let executor = BatchExecutor::new(
                Arc::clone(&member.transport) as Arc<dyn crate::Transport>,
                self.config.clone(),
            )
            .with_accounting(Arc::clone(&self.clock), Arc::clone(&self.meter))
            .with_pricing(
                member.profile.usd_per_1k_input,
                member.profile.usd_per_1k_output,
            );
            let requests: Vec<ModelRequest> = contexts
                .iter()
                .map(|ctx| ModelRequest {
                    context: ctx.clone(),
                    prompt: prompt.clone(),
                    params: *params,
                })
                .collect();
            let results = executor.run(requests);

            let mut presence = Vec::with_capacity(contexts.len());
            let mut parse_failures = 0usize;
            let mut transport_failures = 0usize;
            for result in &results {
                match result {
                    Ok(response) => {
                        let mut answers = Vec::with_capacity(6);
                        let mut complete = true;
                        for (text, message) in response.texts.iter().zip(&prompt.messages) {
                            let parsed =
                                parse_response(text, prompt.language, message.questions.len());
                            complete &= parsed.is_complete();
                            answers.extend(parsed.answers);
                        }
                        if !complete {
                            parse_failures += 1;
                        }
                        let mut set = IndicatorSet::new();
                        for (ind, ans) in prompt.question_order().iter().zip(answers) {
                            if ans == Some(true) {
                                set.insert(*ind);
                            }
                        }
                        presence.push(set);
                    }
                    Err(_) => {
                        transport_failures += 1;
                        presence.push(IndicatorSet::new());
                    }
                }
            }
            if member.voting {
                voter_answers.push((member.profile.name.clone(), presence.clone()));
            }
            per_model.insert(
                member.profile.name.clone(),
                ModelAnswers {
                    presence,
                    parse_failures,
                    transport_failures,
                },
            );
        }

        let voted = (0..contexts.len())
            .map(|i| {
                let votes: Vec<IndicatorSet> =
                    voter_answers.iter().map(|(_, v)| v[i]).collect();
                if votes.is_empty() {
                    IndicatorSet::new()
                } else {
                    majority_vote(&votes, TiePolicy::No)
                }
            })
            .collect();

        EnsembleOutcome { per_model, voted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbhd_geo::{RoadClass, Zoning};
    use nbhd_prompt::{Language, PromptMode};
    use nbhd_scene::{SceneGenerator, ViewKind};
    use nbhd_types::{Heading, ImageId, Indicator, LocationId};

    fn contexts(n: u64) -> Vec<ImageContext> {
        let generator = SceneGenerator::new(5);
        (0..n)
            .map(|loc| {
                let zone = [Zoning::Urban, Zoning::Suburban, Zoning::Rural][(loc % 3) as usize];
                let class = if loc % 2 == 0 { RoadClass::Multilane } else { RoadClass::SingleLane };
                let view = if loc % 4 == 0 { ViewKind::AcrossRoad } else { ViewKind::AlongRoad };
                let spec = generator.compose_raw(
                    ImageId::new(LocationId(loc), Heading::North),
                    zone,
                    class,
                    view,
                );
                ImageContext::from_scene(&spec, 5)
            })
            .collect()
    }

    #[test]
    fn paper_setup_surveys_all_models() {
        let ensemble = Ensemble::paper_setup(5);
        let ctxs = contexts(20);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        assert_eq!(outcome.per_model.len(), 4);
        assert_eq!(outcome.voted.len(), 20);
        for answers in outcome.per_model.values() {
            assert_eq!(answers.presence.len(), 20);
            assert_eq!(answers.transport_failures, 0);
        }
        // cost accrued for every model
        assert!(ensemble.meter().total_usd() > 0.0);
        assert_eq!(ensemble.meter().snapshot().len(), 4);
    }

    #[test]
    fn voting_uses_only_voters() {
        // two voters that always agree beat one non-voter
        let always_yes = {
            let mut p = nbhd_vlm::gemini_15_pro();
            p.name = "always".into();
            for ind in Indicator::ALL {
                p.reliability[ind] = nbhd_vlm::Reliability {
                    sensitivity: 0.995,
                    specificity: 0.005,
                };
            }
            p
        };
        let never_yes = {
            let mut p = nbhd_vlm::gemini_15_pro();
            p.name = "never".into();
            for ind in Indicator::ALL {
                p.reliability[ind] = nbhd_vlm::Reliability {
                    sensitivity: 0.005,
                    specificity: 0.995,
                };
            }
            p
        };
        let ensemble = Ensemble::new(
            vec![(always_yes.clone(), true), (always_yes, true), (never_yes, false)],
            5,
            FaultProfile::NONE,
            ExecutorConfig::default(),
        );
        let ctxs = contexts(10);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        // voted answers follow the two always-yes voters
        let yes_fraction: f64 = outcome
            .voted
            .iter()
            .map(|s| s.len() as f64 / 6.0)
            .sum::<f64>()
            / 10.0;
        assert!(yes_fraction > 0.9, "voted yes fraction {yes_fraction}");
    }

    #[test]
    fn majority_vote_beats_voters_average_on_accuracy() {
        let ensemble = Ensemble::paper_setup(5);
        let ctxs = contexts(150);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        let accuracy = |pred: &[IndicatorSet]| {
            let mut correct = 0usize;
            let mut total = 0usize;
            for (p, c) in pred.iter().zip(&ctxs) {
                for ind in Indicator::ALL {
                    total += 1;
                    correct += usize::from(p.contains(ind) == c.presence.contains(ind));
                }
            }
            correct as f64 / total as f64
        };
        let voted_acc = accuracy(&outcome.voted);
        let voters = ["gemini-1.5-pro", "claude-3.7", "grok-2"];
        let mean_single: f64 = voters
            .iter()
            .map(|name| accuracy(&outcome.per_model[*name].presence))
            .sum::<f64>()
            / 3.0;
        assert!(
            voted_acc >= mean_single - 0.01,
            "voted {voted_acc:.3} vs mean single {mean_single:.3}"
        );
    }
}
