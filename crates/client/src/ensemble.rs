//! The multi-model ensemble runner: queries every model about every image
//! and votes the designated voters (the paper's Sec. IV-C2 setup), with an
//! optional resilience stack — chaos schedules, per-model circuit breakers,
//! and quorum-aware degraded voting.

use std::collections::BTreeMap;
use std::sync::Arc;

use nbhd_eval::{majority_vote, quorum_vote, QuorumPolicy, TiePolicy, VoteProvenance};
use nbhd_journal::CheckpointStore;
use nbhd_obs::Obs;
use nbhd_prompt::{parse_response, Prompt};
use nbhd_types::rng::child_seed_n;
use nbhd_types::{Error, IndicatorSet, Result};
use nbhd_vlm::{ImageContext, ModelProfile, SamplerParams, VisionModel};
use serde::{Deserialize, Serialize};

use crate::{
    BatchExecutor, BreakerConfig, BreakerSnapshot, BreakerState, BreakerTransport, CostMeter,
    ExecutorConfig, FaultProfile, FaultSchedule, HealthReport, ModelHealth, ModelRequest,
    ScheduledTransport, SimulatedTransport, Transport, VirtualClock,
};

/// Journal record kind for completed LLM votes.
pub const VOTE_RECORD_KIND: &str = "llm-vote";

/// Journal payload for one completed `(model, image)` query: the parsed
/// presence bits plus whether the parse was complete. Only *successful*
/// responses are journaled — a transport failure is retried on resume.
#[derive(Debug, Serialize, Deserialize)]
struct VoteRecord {
    bits: u8,
    complete: bool,
}

/// The idempotency key for one `(model, image)` query. The prompt and
/// sampler are part of the run config (hashed into the manifest), so they
/// need not appear in the key.
fn vote_key(model: &str, context: &ImageContext) -> String {
    format!("{}#{}", model, context.image)
}

/// The ensemble's failure-handling stack: what chaos to script, whether to
/// circuit-break each member, and how to vote when members are down.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Wrap each member's transport in a per-model circuit breaker.
    pub breaker: Option<BreakerConfig>,
    /// Scripted chaos fault regimes applied on top of the base faults.
    pub schedule: FaultSchedule,
    /// How degraded votes are held when some voters fail.
    pub quorum: QuorumPolicy,
    /// Restore the legacy convention: a failed voter casts an empty
    /// [`IndicatorSet`] (every indicator "absent") instead of being
    /// excluded. Kept behind this flag so experiments can measure how much
    /// the convention distorts per-class metrics.
    pub legacy_empty_votes: bool,
}

/// One model's answers across a batch of images.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAnswers {
    /// Presence predictions per image (order matches the input batch);
    /// failed images hold an empty set — consult
    /// [`ModelAnswers::responded`] to tell absence from failure.
    pub presence: Vec<IndicatorSet>,
    /// Whether each image actually got an answer from this model.
    pub responded: Vec<bool>,
    /// Images whose response failed to parse completely.
    pub parse_failures: usize,
    /// Images whose request failed at the transport level.
    pub transport_failures: usize,
}

/// The ensemble's batch outcome.
#[derive(Debug, Clone)]
pub struct EnsembleOutcome {
    /// Per-model answers keyed by model name.
    pub per_model: BTreeMap<String, ModelAnswers>,
    /// Voted presence per image (voters only).
    pub voted: Vec<IndicatorSet>,
    /// Per-image vote provenance (who responded, which fallback applied).
    /// Empty under [`ResilienceConfig::legacy_empty_votes`], which predates
    /// provenance tracking.
    pub provenance: Vec<VoteProvenance>,
}

/// Queries a set of simulated models and votes the designated subset.
pub struct Ensemble {
    members: Vec<Member>,
    config: ExecutorConfig,
    resilience: ResilienceConfig,
    survey_seed: u64,
    faults: FaultProfile,
    clock: Arc<VirtualClock>,
    meter: Arc<CostMeter>,
    checkpoint: Option<Arc<dyn CheckpointStore>>,
    obs: Option<Obs>,
}

struct Member {
    profile: ModelProfile,
    /// The base simulated API (bottom of the decorator stack).
    base: Arc<SimulatedTransport>,
    /// Chaos-schedule layer, when a schedule is installed.
    scheduled: Option<Arc<ScheduledTransport>>,
    /// Circuit-breaker layer, when breaking is enabled.
    breaker: Option<Arc<BreakerTransport>>,
    /// Top of the stack — what the executor actually sends through.
    transport: Arc<dyn Transport>,
    voting: bool,
}

impl Member {
    /// Builds the decorator stack `base -> schedule -> breaker` for one
    /// model. Layer seeds derive from the survey seed and member index.
    fn build(
        index: usize,
        profile: ModelProfile,
        voting: bool,
        survey_seed: u64,
        faults: FaultProfile,
        resilience: &ResilienceConfig,
        clock: &Arc<VirtualClock>,
    ) -> Member {
        let base = Arc::new(
            SimulatedTransport::new(
                VisionModel::new(profile.clone(), survey_seed),
                survey_seed ^ (index as u64 + 1),
            )
            .with_faults(faults),
        );
        let mut transport: Arc<dyn Transport> = Arc::clone(&base) as Arc<dyn Transport>;
        let scheduled = if resilience.schedule.is_empty() {
            None
        } else {
            let layer = Arc::new(ScheduledTransport::new(
                Arc::clone(&transport),
                resilience.schedule.clone(),
                Arc::clone(clock),
                child_seed_n(survey_seed, "schedule", index as u64),
            ));
            transport = Arc::clone(&layer) as Arc<dyn Transport>;
            Some(layer)
        };
        let breaker = resilience.breaker.map(|config| {
            let layer = Arc::new(BreakerTransport::new(
                Arc::clone(&transport),
                config,
                Arc::clone(clock),
            ));
            transport = Arc::clone(&layer) as Arc<dyn Transport>;
            layer
        });
        Member {
            profile,
            base,
            scheduled,
            breaker,
            transport,
            voting,
        }
    }
}

impl Ensemble {
    /// Builds an ensemble over model profiles; `voting` selects which
    /// members participate in the vote (the paper votes Gemini, Claude,
    /// and Grok). No chaos schedule or breaker is installed — see
    /// [`Ensemble::with_resilience`].
    pub fn new(
        profiles: Vec<(ModelProfile, bool)>,
        survey_seed: u64,
        faults: FaultProfile,
        config: ExecutorConfig,
    ) -> Ensemble {
        let clock = Arc::new(VirtualClock::new());
        let resilience = ResilienceConfig::default();
        let members = profiles
            .into_iter()
            .enumerate()
            .map(|(i, (profile, voting))| {
                Member::build(i, profile, voting, survey_seed, faults, &resilience, &clock)
            })
            .collect();
        Ensemble {
            members,
            config,
            resilience,
            survey_seed,
            faults,
            clock,
            meter: Arc::new(CostMeter::new()),
            checkpoint: None,
            obs: None,
        }
    }

    /// Attaches a checkpoint store: every successful `(model, image)` query
    /// is journaled under an idempotency key, and [`Ensemble::try_survey`]
    /// replays journaled votes instead of re-querying — a resumed ensemble
    /// never re-queries a journaled `(image, model, question)` triple, and
    /// never re-pays its token cost.
    #[must_use]
    pub fn with_checkpoint(mut self, store: Arc<dyn CheckpointStore>) -> Ensemble {
        self.checkpoint = Some(store);
        self
    }

    /// Installs a resilience stack, rebuilding each member's transport
    /// decorators. Call before [`Ensemble::survey`]; attempt counters reset.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Ensemble {
        let profiles: Vec<(ModelProfile, bool)> = self
            .members
            .iter()
            .map(|m| (m.profile.clone(), m.voting))
            .collect();
        self.members = profiles
            .into_iter()
            .enumerate()
            .map(|(i, (profile, voting))| {
                Member::build(
                    i,
                    profile,
                    voting,
                    self.survey_seed,
                    self.faults,
                    &resilience,
                    &self.clock,
                )
            })
            .collect();
        self.resilience = resilience;
        self
    }

    /// Attaches the run's observability bundle. The ensemble adopts the
    /// obs virtual clock as its accounting clock (rebuilding each
    /// member's transport decorators, which capture the clock), opens a
    /// `vote-<model>` span per member batch, and publishes cost-meter
    /// and breaker counters into the obs registry after each survey.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Ensemble {
        self.clock = Arc::clone(obs.clock());
        let profiles: Vec<(ModelProfile, bool)> = self
            .members
            .iter()
            .map(|m| (m.profile.clone(), m.voting))
            .collect();
        self.members = profiles
            .into_iter()
            .enumerate()
            .map(|(i, (profile, voting))| {
                Member::build(
                    i,
                    profile,
                    voting,
                    self.survey_seed,
                    self.faults,
                    &self.resilience,
                    &self.clock,
                )
            })
            .collect();
        self.obs = Some(obs);
        self
    }

    /// Publishes the cost meter and per-member breaker bookkeeping into
    /// the obs registry. Breaker counters are wall metrics: whether and
    /// when a breaker trips depends on request scheduling.
    fn publish_metrics(&self, obs: &Obs) {
        self.meter.publish(obs.registry());
        for member in &self.members {
            if let Some(breaker) = &member.breaker {
                let snap = breaker.breaker().snapshot();
                obs.registry().set_wall(
                    &format!("breaker.{}.transitions", member.profile.name),
                    snap.transitions,
                );
                obs.registry().set_wall(
                    &format!("breaker.{}.fail_fast", member.profile.name),
                    snap.fail_fast,
                );
                let name = &member.profile.name;
                obs.registry()
                    .set_wall(&format!("breaker.{name}.opened"), snap.edges.opened);
                obs.registry()
                    .set_wall(&format!("breaker.{name}.probed"), snap.edges.probed);
                obs.registry()
                    .set_wall(&format!("breaker.{name}.reclosed"), snap.edges.reclosed);
                obs.registry()
                    .set_wall(&format!("breaker.{name}.reopened"), snap.edges.reopened);
                obs.registry()
                    .set_wall(&format!("breaker.{name}.flaps"), snap.edges.flaps());
            }
        }
    }

    /// The paper's four models with its top-three voting set.
    pub fn paper_setup(survey_seed: u64) -> Ensemble {
        let profiles = vec![
            (nbhd_vlm::chatgpt_4o_mini(), false),
            (nbhd_vlm::gemini_15_pro(), true),
            (nbhd_vlm::claude_37(), true),
            (nbhd_vlm::grok_2(), true),
        ];
        Ensemble::new(
            profiles,
            survey_seed,
            FaultProfile::NONE,
            ExecutorConfig::default(),
        )
    }

    /// The shared cost meter.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Attempts that would have hit the real API for `model`: counted at
    /// the chaos-schedule layer when one is installed (so shed traffic is
    /// included), else at the base transport. `None` for unknown models.
    pub fn api_attempts(&self, model: &str) -> Option<u64> {
        self.members
            .iter()
            .find(|m| m.profile.name == model)
            .map(|m| match &m.scheduled {
                Some(layer) => layer.attempts(),
                None => m.base.attempts(),
            })
    }

    /// Per-model health: availability and resilience counters from the
    /// cost meter plus each member's breaker bookkeeping. Members without
    /// a breaker report a quiet closed one.
    pub fn health_report(&self) -> HealthReport {
        let closed = BreakerSnapshot {
            state: BreakerState::Closed,
            opened_at_ms: 0,
            probe_successes: 0,
            transitions: 0,
            edges: crate::BreakerTransitions::default(),
            fail_fast: 0,
        };
        let models = self
            .members
            .iter()
            .map(|m| ModelHealth {
                model: m.profile.name.clone(),
                usage: self.meter.usage(&m.profile.name).unwrap_or_default(),
                breaker: m
                    .breaker
                    .as_ref()
                    .map_or(closed, |b| b.breaker().snapshot()),
            })
            .collect();
        HealthReport { models }
    }

    /// Runs the full survey: every member answers every image, then the
    /// voters decide presence per image. By default the vote is held over
    /// the voters that responded ([`quorum_vote`]); under
    /// [`ResilienceConfig::legacy_empty_votes`] failed voters cast empty
    /// sets into a plain [`majority_vote`] instead.
    ///
    /// # Panics
    ///
    /// Panics if a checkpoint store attached via
    /// [`Ensemble::with_checkpoint`] fails; use [`Ensemble::try_survey`]
    /// for checkpointed runs.
    pub fn survey(
        &self,
        contexts: &[ImageContext],
        prompt: &Prompt,
        params: &SamplerParams,
    ) -> EnsembleOutcome {
        self.try_survey(contexts, prompt, params)
            .expect("survey without a checkpoint store is infallible")
    }

    /// [`Ensemble::survey`], surfacing checkpoint-store failures.
    ///
    /// With a store attached, each member's journaled votes are replayed
    /// without touching the transport, and only the remaining contexts are
    /// queried; each fresh successful response is journaled *before* it is
    /// counted, so a crash mid-batch loses at most in-flight queries.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint store fails to persist a vote
    /// or holds a malformed vote record.
    pub fn try_survey(
        &self,
        contexts: &[ImageContext],
        prompt: &Prompt,
        params: &SamplerParams,
    ) -> Result<EnsembleOutcome> {
        let mut per_model = BTreeMap::new();
        let mut voter_answers: Vec<Vec<Option<IndicatorSet>>> = Vec::new();
        for member in &self.members {
            let vote_stage = self
                .obs
                .as_ref()
                .map(|obs| obs.tracer().enter(&format!("vote-{}", member.profile.name)));
            // replay journaled votes; only the rest go to the transport
            let mut replayed: Vec<Option<VoteRecord>> = Vec::with_capacity(contexts.len());
            for ctx in contexts {
                let record = match &self.checkpoint {
                    Some(store) => store
                        .load(VOTE_RECORD_KIND, &vote_key(&member.profile.name, ctx))
                        .map(|value| {
                            serde_json::from_value::<VoteRecord>(value)
                                .map_err(|e| Error::parse(format!("vote record: {e}")))
                        })
                        .transpose()?,
                    None => None,
                };
                replayed.push(record);
            }
            let pending: Vec<ModelRequest> = contexts
                .iter()
                .zip(&replayed)
                .filter(|(_, record)| record.is_none())
                .map(|(ctx, _)| ModelRequest {
                    context: ctx.clone(),
                    prompt: prompt.clone(),
                    params: *params,
                })
                .collect();
            let results = if pending.is_empty() {
                Vec::new()
            } else {
                let mut executor =
                    BatchExecutor::new(Arc::clone(&member.transport), self.config.clone())
                        .with_accounting(Arc::clone(&self.clock), Arc::clone(&self.meter))
                        .with_pricing(
                            member.profile.usd_per_1k_input,
                            member.profile.usd_per_1k_output,
                        );
                if let Some(obs) = &self.obs {
                    executor = executor.with_obs(obs.clone());
                }
                executor.run(pending)
            };
            let mut fresh = results.into_iter();

            let mut presence = Vec::with_capacity(contexts.len());
            let mut answered = Vec::with_capacity(contexts.len());
            let mut responded = Vec::with_capacity(contexts.len());
            let mut parse_failures = 0usize;
            let mut transport_failures = 0usize;
            for (ctx, record) in contexts.iter().zip(replayed) {
                if let Some(record) = record {
                    let set = IndicatorSet::from_bits(record.bits);
                    if !record.complete {
                        parse_failures += 1;
                    }
                    presence.push(set);
                    answered.push(Some(set));
                    responded.push(true);
                    continue;
                }
                let result = fresh
                    .next()
                    .expect("one executor result per pending context");
                match result {
                    Ok(response) => {
                        let mut answers = Vec::with_capacity(6);
                        let mut complete = true;
                        for (text, message) in response.texts.iter().zip(&prompt.messages) {
                            let parsed =
                                parse_response(text, prompt.language, message.questions.len());
                            complete &= parsed.is_complete();
                            answers.extend(parsed.answers);
                        }
                        if !complete {
                            parse_failures += 1;
                        }
                        let mut set = IndicatorSet::new();
                        for (ind, ans) in prompt.question_order().iter().zip(answers) {
                            if ans == Some(true) {
                                set.insert(*ind);
                            }
                        }
                        if let Some(store) = &self.checkpoint {
                            // save-before-act: the vote is durable before it
                            // counts toward any tally
                            let record = VoteRecord {
                                bits: set.bits(),
                                complete,
                            };
                            store.save(
                                VOTE_RECORD_KIND,
                                &vote_key(&member.profile.name, ctx),
                                serde_json::to_value(&record)
                                    .map_err(|e| Error::parse(format!("vote record: {e}")))?,
                            )?;
                        }
                        presence.push(set);
                        answered.push(Some(set));
                        responded.push(true);
                    }
                    Err(_) => {
                        // transport failures are NOT journaled: a resumed
                        // run retries them instead of replaying the failure
                        transport_failures += 1;
                        presence.push(IndicatorSet::new());
                        answered.push(None);
                        responded.push(false);
                    }
                }
            }
            if member.voting {
                voter_answers.push(answered);
            }
            per_model.insert(
                member.profile.name.clone(),
                ModelAnswers {
                    presence,
                    responded,
                    parse_failures,
                    transport_failures,
                },
            );
            if let Some(stage) = vote_stage {
                stage.record();
            }
        }
        if let Some(obs) = &self.obs {
            self.publish_metrics(obs);
        }

        let mut voted = Vec::with_capacity(contexts.len());
        let mut provenance = Vec::new();
        for i in 0..contexts.len() {
            let votes: Vec<Option<IndicatorSet>> =
                voter_answers.iter().map(|v| v[i]).collect();
            if votes.is_empty() {
                voted.push(IndicatorSet::new());
            } else if self.resilience.legacy_empty_votes {
                let sets: Vec<IndicatorSet> =
                    votes.iter().map(|v| v.unwrap_or_default()).collect();
                voted.push(majority_vote(&sets, TiePolicy::No));
            } else {
                let (set, prov) = quorum_vote(&votes, &self.resilience.quorum);
                voted.push(set);
                provenance.push(prov);
            }
        }

        Ok(EnsembleOutcome {
            per_model,
            voted,
            provenance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultRegime, RetryPolicy};
    use nbhd_eval::VoteFallback;
    use nbhd_geo::{RoadClass, Zoning};
    use nbhd_prompt::{Language, PromptMode};
    use nbhd_scene::{SceneGenerator, ViewKind};
    use nbhd_types::{Heading, ImageId, Indicator, LocationId};

    fn contexts(n: u64) -> Vec<ImageContext> {
        let generator = SceneGenerator::new(5);
        (0..n)
            .map(|loc| {
                let zone = [Zoning::Urban, Zoning::Suburban, Zoning::Rural][(loc % 3) as usize];
                let class = if loc % 2 == 0 { RoadClass::Multilane } else { RoadClass::SingleLane };
                let view = if loc % 4 == 0 { ViewKind::AcrossRoad } else { ViewKind::AlongRoad };
                let spec = generator.compose_raw(
                    ImageId::new(LocationId(loc), Heading::North),
                    zone,
                    class,
                    view,
                );
                ImageContext::from_scene(&spec, 5)
            })
            .collect()
    }

    #[test]
    fn paper_setup_surveys_all_models() {
        let ensemble = Ensemble::paper_setup(5);
        let ctxs = contexts(20);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        assert_eq!(outcome.per_model.len(), 4);
        assert_eq!(outcome.voted.len(), 20);
        for answers in outcome.per_model.values() {
            assert_eq!(answers.presence.len(), 20);
            assert_eq!(answers.transport_failures, 0);
            assert!(answers.responded.iter().all(|r| *r));
        }
        // a clean run is a full panel for every image
        assert_eq!(outcome.provenance.len(), 20);
        assert!(outcome.provenance.iter().all(VoteProvenance::is_full_panel));
        // cost accrued for every model
        assert!(ensemble.meter().total_usd() > 0.0);
        assert_eq!(ensemble.meter().snapshot().len(), 4);
    }

    #[test]
    fn checkpointed_survey_replays_votes_without_requerying() {
        use nbhd_journal::MemoryStore;
        let store = Arc::new(MemoryStore::new());
        let ctxs = contexts(12);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let params = SamplerParams::default();

        let first = Ensemble::paper_setup(5).with_checkpoint(store.clone());
        let a = first.try_survey(&ctxs, &prompt, &params).unwrap();
        assert!(first.api_attempts("gemini-1.5-pro").unwrap() > 0);
        assert_eq!(
            store.load_kind(VOTE_RECORD_KIND).len(),
            4 * 12,
            "every (model, image) vote journaled"
        );

        // a "restarted process": same config, same journal — every vote
        // replays, no model is queried again
        let second = Ensemble::paper_setup(5).with_checkpoint(store.clone());
        let b = second.try_survey(&ctxs, &prompt, &params).unwrap();
        for model in a.per_model.keys() {
            assert_eq!(second.api_attempts(model), Some(0), "{model} re-queried");
        }
        assert_eq!(a.voted, b.voted);
        assert_eq!(a.per_model, b.per_model);
        assert_eq!(a.provenance.len(), b.provenance.len());

        // an unjournaled ensemble still answers identically
        let plain = Ensemble::paper_setup(5);
        let c = plain.survey(&ctxs, &prompt, &params);
        assert_eq!(a.voted, c.voted);
        assert_eq!(a.per_model, c.per_model);
    }

    #[test]
    fn obs_collects_vote_spans_and_publishes_the_meter() {
        let obs = Obs::new();
        let ensemble = Ensemble::paper_setup(5).with_obs(obs.clone());
        let ctxs = contexts(8);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        assert_eq!(outcome.voted.len(), 8);

        let summary = obs.summary();
        let vote_spans = summary
            .spans
            .iter()
            .filter(|s| s.name.starts_with("vote-"))
            .count();
        assert_eq!(vote_spans, 4, "one vote span per member");
        // each member's batch span nests inside its vote span
        assert!(summary
            .spans
            .iter()
            .any(|s| s.key == "vote-gemini-1.5-pro/batch-gemini-1.5-pro" && s.depth == 1));
        // the cost meter published per-model counters into the registry
        assert_eq!(
            summary
                .metrics
                .counters
                .get("client.gemini-1.5-pro.requests"),
            Some(&8)
        );
        assert!(summary.metrics.gauges.contains_key("client.grok-2.usd"));
        // accounting and span timing share the obs clock
        assert!(obs.clock().now_ms() > 0);
        assert!(summary.spans.iter().any(|s| s.virtual_ms() > 0));
    }

    #[test]
    fn voting_uses_only_voters() {
        // two voters that always agree beat one non-voter
        let always_yes = {
            let mut p = nbhd_vlm::gemini_15_pro();
            p.name = "always".into();
            for ind in Indicator::ALL {
                p.reliability[ind] = nbhd_vlm::Reliability {
                    sensitivity: 0.995,
                    specificity: 0.005,
                };
            }
            p
        };
        let never_yes = {
            let mut p = nbhd_vlm::gemini_15_pro();
            p.name = "never".into();
            for ind in Indicator::ALL {
                p.reliability[ind] = nbhd_vlm::Reliability {
                    sensitivity: 0.005,
                    specificity: 0.995,
                };
            }
            p
        };
        let ensemble = Ensemble::new(
            vec![(always_yes.clone(), true), (always_yes, true), (never_yes, false)],
            5,
            FaultProfile::NONE,
            ExecutorConfig::default(),
        );
        let ctxs = contexts(10);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        // voted answers follow the two always-yes voters
        let yes_fraction: f64 = outcome
            .voted
            .iter()
            .map(|s| s.len() as f64 / 6.0)
            .sum::<f64>()
            / 10.0;
        assert!(yes_fraction > 0.9, "voted yes fraction {yes_fraction}");
    }

    #[test]
    fn majority_vote_beats_voters_average_on_accuracy() {
        let ensemble = Ensemble::paper_setup(5);
        let ctxs = contexts(150);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        let accuracy = |pred: &[IndicatorSet]| {
            let mut correct = 0usize;
            let mut total = 0usize;
            for (p, c) in pred.iter().zip(&ctxs) {
                for ind in Indicator::ALL {
                    total += 1;
                    correct += usize::from(p.contains(ind) == c.presence.contains(ind));
                }
            }
            correct as f64 / total as f64
        };
        let voted_acc = accuracy(&outcome.voted);
        let voters = ["gemini-1.5-pro", "claude-3.7", "grok-2"];
        let mean_single: f64 = voters
            .iter()
            .map(|name| accuracy(&outcome.per_model[*name].presence))
            .sum::<f64>()
            / 3.0;
        assert!(
            voted_acc >= mean_single - 0.01,
            "voted {voted_acc:.3} vs mean single {mean_single:.3}"
        );
    }

    fn degraded_ensemble(legacy: bool) -> Ensemble {
        let profiles = vec![
            (nbhd_vlm::gemini_15_pro(), true),
            (nbhd_vlm::claude_37(), true),
            (nbhd_vlm::grok_2(), true),
        ];
        Ensemble::new(
            profiles,
            5,
            FaultProfile::NONE,
            ExecutorConfig {
                rate_limit: None,
                retry: RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                },
                ..ExecutorConfig::default()
            },
        )
        .with_resilience(ResilienceConfig {
            schedule: FaultSchedule::new()
                .with(FaultRegime::outage(0, u64::MAX).for_models(&["grok-2"])),
            legacy_empty_votes: legacy,
            ..ResilienceConfig::default()
        })
    }

    #[test]
    fn one_member_down_degrades_to_a_two_voter_quorum() {
        let ensemble = degraded_ensemble(false);
        let ctxs = contexts(15);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        assert_eq!(outcome.per_model["grok-2"].transport_failures, 15);
        assert_eq!(outcome.provenance.len(), 15);
        for prov in &outcome.provenance {
            assert_eq!(prov.fallback, VoteFallback::DegradedQuorum { responders: 2 });
            assert_eq!(prov.skipped, vec![2], "grok is voter index 2");
        }
        // the two healthy voters still produce substantive answers
        assert!(outcome.voted.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn legacy_empty_votes_are_a_subset_of_the_quorum_vote() {
        // with one voter down, the legacy convention demands unanimity from
        // the two healthy voters, so its positives are a strict subset
        let quorum = degraded_ensemble(false);
        let legacy = degraded_ensemble(true);
        let ctxs = contexts(25);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let q = quorum.survey(&ctxs, &prompt, &SamplerParams::default());
        let l = legacy.survey(&ctxs, &prompt, &SamplerParams::default());
        assert!(l.provenance.is_empty(), "legacy mode tracks no provenance");
        for (lv, qv) in l.voted.iter().zip(&q.voted) {
            for ind in lv.iter() {
                assert!(qv.contains(ind), "legacy found {ind:?} the quorum missed");
            }
        }
        let legacy_total: usize = l.voted.iter().map(|s| s.len()).sum();
        let quorum_total: usize = q.voted.iter().map(|s| s.len()).sum();
        assert!(
            legacy_total < quorum_total,
            "legacy {legacy_total} vs quorum {quorum_total}: the empty-set convention must suppress positives"
        );
    }

    #[test]
    fn breaker_trips_on_a_dead_member_and_reports_health() {
        let profiles = vec![
            (nbhd_vlm::gemini_15_pro(), true),
            (nbhd_vlm::claude_37(), true),
            (nbhd_vlm::grok_2(), true),
        ];
        let ensemble = Ensemble::new(
            profiles,
            7,
            FaultProfile::NONE,
            ExecutorConfig::default(),
        )
        .with_resilience(ResilienceConfig {
            breaker: Some(BreakerConfig::default()),
            schedule: FaultSchedule::new()
                .with(FaultRegime::outage(0, u64::MAX).for_models(&["grok-2"])),
            ..ResilienceConfig::default()
        });
        let ctxs = contexts(30);
        let prompt = Prompt::build(Language::English, PromptMode::Parallel);
        let outcome = ensemble.survey(&ctxs, &prompt, &SamplerParams::default());
        assert_eq!(outcome.per_model["grok-2"].transport_failures, 30);

        let health = ensemble.health_report();
        assert_eq!(health.models.len(), 3);
        let by_name: BTreeMap<&str, &ModelHealth> = health
            .models
            .iter()
            .map(|m| (m.model.as_str(), m))
            .collect();
        assert_eq!(by_name["gemini-1.5-pro"].availability(), 1.0);
        assert_eq!(by_name["grok-2"].availability(), 0.0);
        let grok = by_name["grok-2"];
        assert!(grok.breaker.transitions >= 1, "breaker must have tripped");
        assert!(grok.breaker.fail_fast > 0, "later requests must fail fast");
        // fail-fast saves API traffic: far fewer than 30 * max_attempts
        // requests reached the (dead) API
        let wasted = ensemble.api_attempts("grok-2").unwrap();
        let retry_only = 30 * u64::from(ExecutorConfig::default().retry.max_attempts);
        assert!(
            wasted * 2 <= retry_only,
            "breaker should cut wasted attempts at least in half: {wasted} vs {retry_only}"
        );
        // the rendered table mentions every model
        let text = health.render("Ensemble health");
        assert!(text.contains("grok-2") && text.contains("gemini-1.5-pro"));
    }
}
