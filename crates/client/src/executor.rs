//! The concurrent batch executor: an ordered fan-out over the shared
//! execution substrate, with rate limiting, retries, and cost metering
//! over a shared virtual clock.

use std::sync::Arc;

use nbhd_exec::{Parallelism, ScopedPool};
use nbhd_obs::Obs;

use crate::{
    send_resilient, CostMeter, HedgePolicy, ModelRequest, ModelResponse, RetryPolicy, TokenBucket,
    Transport, TransportError, VirtualClock,
};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker-thread budget for the request fan-out.
    pub parallelism: Parallelism,
    /// Optional rate limit as `(burst_capacity, requests_per_second)`.
    pub rate_limit: Option<(u32, f64)>,
    /// Retry policy per request.
    pub retry: RetryPolicy,
    /// Optional tail-latency hedging policy per attempt.
    pub hedge: Option<HedgePolicy>,
    /// Seed for retry jitter.
    pub seed: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            parallelism: Parallelism::fixed(4),
            rate_limit: Some((8, 10.0)),
            retry: RetryPolicy::default(),
            hedge: None,
            seed: 0,
        }
    }
}

/// Runs batches of requests against one transport.
///
/// ```no_run
/// use std::sync::Arc;
/// use nbhd_client::{BatchExecutor, ExecutorConfig, SimulatedTransport};
/// use nbhd_vlm::{gemini_15_pro, VisionModel};
///
/// let transport = Arc::new(SimulatedTransport::new(VisionModel::new(gemini_15_pro(), 1), 1));
/// let executor = BatchExecutor::new(transport, ExecutorConfig::default());
/// let responses = executor.run(Vec::new());
/// assert!(responses.is_empty());
/// ```
pub struct BatchExecutor {
    transport: Arc<dyn Transport>,
    config: ExecutorConfig,
    clock: Arc<VirtualClock>,
    meter: Arc<CostMeter>,
    pricing: (f64, f64),
    obs: Option<Obs>,
}

impl BatchExecutor {
    /// Creates an executor with its own clock and meter.
    pub fn new(transport: Arc<dyn Transport>, config: ExecutorConfig) -> BatchExecutor {
        BatchExecutor {
            transport,
            config,
            clock: Arc::new(VirtualClock::new()),
            meter: Arc::new(CostMeter::new()),
            pricing: (0.0, 0.0),
            obs: None,
        }
    }

    /// Shares an existing clock and meter (e.g. across ensemble members).
    #[must_use]
    pub fn with_accounting(mut self, clock: Arc<VirtualClock>, meter: Arc<CostMeter>) -> Self {
        self.clock = clock;
        self.meter = meter;
        self
    }

    /// Attaches a run observability bundle: every batch records a
    /// `batch-<model>` stage span and the fan-out's execution counters
    /// land in the bundle's registry. Does not touch the accounting
    /// clock — share that via [`BatchExecutor::with_accounting`]
    /// (callers that want spans stamped in batch time pass an `Obs`
    /// built over the same clock).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Sets billing rates as `(usd_per_1k_input, usd_per_1k_output)`.
    #[must_use]
    pub fn with_pricing(mut self, usd_per_1k_input: f64, usd_per_1k_output: f64) -> Self {
        self.pricing = (usd_per_1k_input, usd_per_1k_output);
        self
    }

    /// The executor's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The executor's cost meter.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// Runs all requests, preserving order in the output.
    ///
    /// The fan-out rides the shared execution substrate (`nbhd-exec`), so
    /// output slot `i` always holds request `i`'s result; the token bucket,
    /// retry policy, hedging, and breaker state behave exactly as they do
    /// under the sequential path.
    pub fn run(&self, requests: Vec<ModelRequest>) -> Vec<Result<ModelResponse, TransportError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let bucket = self
            .config
            .rate_limit
            .map(|(cap, rate)| TokenBucket::new(cap, rate, self.clock.clone()));

        let stage = self
            .obs
            .as_ref()
            .map(|obs| obs.tracer().enter(&format!("batch-{}", self.transport.model_name())));
        let mut pool = ScopedPool::new(self.config.parallelism);
        if let Some(obs) = &self.obs {
            pool = pool.with_metrics(Arc::clone(obs.registry()));
        }
        let results = pool.map(&requests, |request| {
            if let Some(bucket) = &bucket {
                bucket.acquire_blocking();
            }
            let outcome = send_resilient(
                self.transport.as_ref(),
                request,
                &self.config.retry,
                self.config.hedge.as_ref(),
                &self.clock,
                self.config.seed,
            );
            match outcome {
                Ok(retried) => {
                    self.meter.record_success(
                        self.transport.model_name(),
                        retried.response.input_tokens,
                        retried.response.output_tokens,
                        self.pricing.0,
                        self.pricing.1,
                        retried.response.latency_ms,
                        retried.attempts,
                    );
                    self.meter.record_resilience(
                        self.transport.model_name(),
                        retried.hedges_fired,
                        retried.hedges_won,
                        retried.backoff_ms,
                    );
                    Ok(retried.response)
                }
                Err(failure) => {
                    // charge the attempts the request really made — a
                    // fail-fast breaker rejection burns one, not
                    // `retry.max_attempts`
                    if failure.failed_fast() {
                        self.meter.record_fail_fast(self.transport.model_name());
                    } else {
                        self.meter
                            .record_failure(self.transport.model_name(), failure.attempts);
                    }
                    self.meter.record_resilience(
                        self.transport.model_name(),
                        failure.hedges_fired,
                        failure.hedges_won,
                        failure.backoff_ms,
                    );
                    Err(failure.error)
                }
            }
        });
        if let Some(stage) = stage {
            stage.record();
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultProfile, SimulatedTransport};
    use nbhd_geo::{RoadClass, Zoning};
    use nbhd_prompt::{Language, Prompt, PromptMode};
    use nbhd_scene::{SceneGenerator, ViewKind};
    use nbhd_types::{Heading, ImageId, LocationId};
    use nbhd_vlm::{gemini_15_pro, ImageContext, SamplerParams, VisionModel};

    fn requests(n: u64) -> Vec<ModelRequest> {
        let generator = SceneGenerator::new(5);
        (0..n)
            .map(|loc| {
                let spec = generator.compose_raw(
                    ImageId::new(LocationId(loc), Heading::North),
                    Zoning::Urban,
                    RoadClass::Multilane,
                    ViewKind::AlongRoad,
                );
                ModelRequest {
                    context: ImageContext::from_scene(&spec, 5),
                    prompt: Prompt::build(Language::English, PromptMode::Parallel),
                    params: SamplerParams::default(),
                }
            })
            .collect()
    }

    fn executor(faults: FaultProfile, config: ExecutorConfig) -> BatchExecutor {
        let transport = Arc::new(
            SimulatedTransport::new(VisionModel::new(gemini_15_pro(), 5), 9).with_faults(faults),
        );
        BatchExecutor::new(transport, config).with_pricing(0.001, 0.005)
    }

    #[test]
    fn results_preserve_request_order() {
        let e = executor(FaultProfile::NONE, ExecutorConfig::default());
        let reqs = requests(30);
        let expected: Vec<String> = reqs
            .iter()
            .map(|r| {
                VisionModel::new(gemini_15_pro(), 5)
                    .respond(&r.context, &r.prompt, &r.params)[0]
                    .clone()
            })
            .collect();
        let results = e.run(reqs);
        assert_eq!(results.len(), 30);
        for (res, exp) in results.iter().zip(expected) {
            assert_eq!(res.as_ref().unwrap().texts[0], exp);
        }
    }

    #[test]
    fn meter_records_all_successes() {
        let e = executor(FaultProfile::NONE, ExecutorConfig::default());
        let _ = e.run(requests(25));
        let usage = e.meter().usage("gemini-1.5-pro").unwrap();
        assert_eq!(usage.requests, 25);
        assert!(usage.usd > 0.0);
        assert!(usage.input_tokens > 25 * 768);
    }

    #[test]
    fn flaky_transport_mostly_recovers_via_retries() {
        let e = executor(
            FaultProfile {
                rate_limit: 0.15,
                timeout: 0.10,
                server_error: 0.05,
            },
            ExecutorConfig::default(),
        );
        let results = e.run(requests(60));
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 55, "only {ok}/60 succeeded despite retries");
        let usage = e.meter().usage("gemini-1.5-pro").unwrap();
        assert!(usage.retries > 0, "retries should have occurred");
    }

    #[test]
    fn rate_limit_stretches_virtual_time() {
        let slow = executor(
            FaultProfile::NONE,
            ExecutorConfig {
                rate_limit: Some((1, 2.0)),
                ..ExecutorConfig::default()
            },
        );
        let _ = slow.run(requests(40));
        // 40 requests at 2/sec is at least ~19.5 virtual seconds of throttle
        assert!(
            slow.clock().now_ms() > 19_000,
            "virtual time {} ms",
            slow.clock().now_ms()
        );
    }

    #[test]
    fn failures_record_real_attempt_counts() {
        /// Always rejects with a non-retryable error: each request burns
        /// exactly one attempt, so zero retries must be recorded.
        struct Rejecting;
        impl Transport for Rejecting {
            fn model_name(&self) -> &str {
                "rejecting"
            }
            fn send(&self, _r: &ModelRequest) -> Result<ModelResponse, TransportError> {
                Err(TransportError::BadRequest("no".into()))
            }
        }
        let e = BatchExecutor::new(Arc::new(Rejecting), ExecutorConfig::default());
        let results = e.run(requests(12));
        assert!(results.iter().all(Result::is_err));
        let usage = e.meter().usage("rejecting").unwrap();
        assert_eq!(usage.failures, 12);
        assert_eq!(
            usage.retries, 0,
            "non-retryable failures must not be billed max_attempts retries"
        );
    }

    #[test]
    fn hedging_recovers_requests_within_one_attempt() {
        use std::sync::atomic::{AtomicU64, Ordering};
        /// Fails every odd call; hedge backups (the next call) succeed.
        struct Alternating(AtomicU64);
        impl Transport for Alternating {
            fn model_name(&self) -> &str {
                "alternating"
            }
            fn send(&self, _r: &ModelRequest) -> Result<ModelResponse, TransportError> {
                if self.0.fetch_add(1, Ordering::SeqCst) % 2 == 0 {
                    Err(TransportError::ServerError)
                } else {
                    Ok(ModelResponse {
                        texts: vec!["Yes".into()],
                        latency_ms: 100.0,
                        input_tokens: 10,
                        output_tokens: 1,
                    })
                }
            }
        }
        let e = BatchExecutor::new(
            Arc::new(Alternating(AtomicU64::new(0))),
            ExecutorConfig {
                parallelism: Parallelism::serial(),
                rate_limit: None,
                hedge: Some(HedgePolicy::after_ms(10)),
                ..ExecutorConfig::default()
            },
        );
        let results = e.run(requests(8));
        assert!(results.iter().all(Result::is_ok));
        let usage = e.meter().usage("alternating").unwrap();
        assert_eq!(usage.requests, 8);
        assert_eq!(usage.retries, 0, "hedges rescue inside the first attempt");
        assert_eq!(usage.hedges_fired, 8);
        assert_eq!(usage.hedges_won, 8);
    }

    #[test]
    fn single_worker_still_completes() {
        let e = executor(
            FaultProfile::NONE,
            ExecutorConfig {
                parallelism: Parallelism::serial(),
                rate_limit: None,
                ..ExecutorConfig::default()
            },
        );
        let results = e.run(requests(10));
        assert!(results.iter().all(Result::is_ok));
    }
}
