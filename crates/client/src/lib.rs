//! Concurrent model-query orchestration: the layer between the survey
//! pipeline and the (simulated) vision-model APIs.
//!
//! The study's discussion section flags "computational costs and API
//! latency" as the practical barrier to majority-voting LLM ensembles; this
//! crate makes those costs first-class. It provides:
//!
//! * [`Transport`] — the API boundary, with [`SimulatedTransport`] wrapping
//!   a [`nbhd_vlm::VisionModel`] plus latency modeling and fault injection;
//! * [`TokenBucket`] rate limiting over a [`VirtualClock`] (no real
//!   sleeping: deterministic, instantaneous tests);
//! * [`send_with_retry`] — exponential backoff with jitter and
//!   server-hint honoring;
//! * [`CostMeter`] — per-model token/dollar/latency accounting;
//! * [`BatchExecutor`] — a crossbeam-channel worker pool;
//! * [`Ensemble`] — the multi-model survey runner with majority voting.
//!
//! # Examples
//!
//! ```
//! use nbhd_client::Ensemble;
//! use nbhd_geo::{RoadClass, Zoning};
//! use nbhd_prompt::{Language, Prompt, PromptMode};
//! use nbhd_scene::{SceneGenerator, ViewKind};
//! use nbhd_types::{Heading, ImageId, LocationId};
//! use nbhd_vlm::{ImageContext, SamplerParams};
//!
//! let spec = SceneGenerator::new(1).compose_raw(
//!     ImageId::new(LocationId(0), Heading::North),
//!     Zoning::Urban,
//!     RoadClass::Multilane,
//!     ViewKind::AlongRoad,
//! );
//! let contexts = vec![ImageContext::from_scene(&spec, 1)];
//! let ensemble = Ensemble::paper_setup(1);
//! let prompt = Prompt::build(Language::English, PromptMode::Parallel);
//! let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());
//! println!("voted: {}", outcome.voted[0]);
//! println!("{}", ensemble.meter().report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod ensemble;
mod executor;
mod ratelimit;
mod retry;
mod transport;

pub use cost::{CostMeter, ModelUsage};
pub use ensemble::{Ensemble, EnsembleOutcome, ModelAnswers};
pub use executor::{BatchExecutor, ExecutorConfig};
pub use ratelimit::{TokenBucket, VirtualClock};
pub use retry::{send_with_retry, RetriedResponse, RetryPolicy};
pub use transport::{
    FaultProfile, ModelRequest, ModelResponse, SimulatedTransport, Transport, TransportError,
};
