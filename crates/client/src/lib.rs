//! Concurrent model-query orchestration: the layer between the survey
//! pipeline and the (simulated) vision-model APIs.
//!
//! The study's discussion section flags "computational costs and API
//! latency" as the practical barrier to majority-voting LLM ensembles; this
//! crate makes those costs first-class. It provides:
//!
//! * [`Transport`] — the API boundary, with [`SimulatedTransport`] wrapping
//!   a [`nbhd_vlm::VisionModel`] plus latency modeling and fault injection;
//! * [`TokenBucket`] rate limiting over a [`VirtualClock`] (no real
//!   sleeping: deterministic, instantaneous tests);
//! * [`send_with_retry`] / [`send_resilient`] — exponential backoff with
//!   jitter, a backoff cap, deadline budgets, and tail-latency hedging;
//! * [`FaultSchedule`] — scripted chaos regimes (outages, brownouts,
//!   rate-limit storms) over the virtual clock, via [`ScheduledTransport`];
//! * [`CircuitBreaker`] / [`BreakerTransport`] — per-model fail-fast when
//!   a backend is observably down;
//! * [`CostMeter`] — per-model token/dollar/latency/resilience accounting;
//! * [`BatchExecutor`] — an order-preserving request fan-out on the shared
//!   [`nbhd_exec`] worker pool;
//! * [`Ensemble`] — the multi-model survey runner with quorum-aware
//!   voting and [`HealthReport`] observability.
//!
//! # Examples
//!
//! ```
//! use nbhd_client::Ensemble;
//! use nbhd_geo::{RoadClass, Zoning};
//! use nbhd_prompt::{Language, Prompt, PromptMode};
//! use nbhd_scene::{SceneGenerator, ViewKind};
//! use nbhd_types::{Heading, ImageId, LocationId};
//! use nbhd_vlm::{ImageContext, SamplerParams};
//!
//! let spec = SceneGenerator::new(1).compose_raw(
//!     ImageId::new(LocationId(0), Heading::North),
//!     Zoning::Urban,
//!     RoadClass::Multilane,
//!     ViewKind::AlongRoad,
//! );
//! let contexts = vec![ImageContext::from_scene(&spec, 1)];
//! let ensemble = Ensemble::paper_setup(1);
//! let prompt = Prompt::build(Language::English, PromptMode::Parallel);
//! let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());
//! println!("voted: {}", outcome.voted[0]);
//! println!("{}", ensemble.meter().report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod cost;
mod ensemble;
mod executor;
mod health;
mod hedge;
mod ratelimit;
mod retry;
mod schedule;
mod transport;

pub use breaker::{
    BreakerConfig, BreakerSnapshot, BreakerState, BreakerTransitions, BreakerTransport,
    CircuitBreaker,
};
pub use cost::{token_cost_usd, CostMeter, ModelUsage};
pub use ensemble::{
    Ensemble, EnsembleOutcome, ModelAnswers, ResilienceConfig, VOTE_RECORD_KIND,
};
pub use executor::{BatchExecutor, ExecutorConfig};
pub use nbhd_exec::Parallelism;
pub use health::{HealthReport, ModelHealth};
pub use hedge::HedgePolicy;
pub use ratelimit::{TokenBucket, VirtualClock};
pub use retry::{
    send_resilient, send_with_retry, RetriedResponse, RetryFailure, RetryPolicy, ERROR_RTT_MS,
};
pub use schedule::{DrawKeying, FaultRegime, FaultSchedule, RegimeKind, ScheduledTransport};
pub use transport::{
    FaultProfile, ModelRequest, ModelResponse, SimulatedTransport, Transport, TransportError,
};
