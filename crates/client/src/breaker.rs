//! Per-model circuit breaking over the virtual clock.
//!
//! A [`CircuitBreaker`] tracks a rolling success/failure window and trips
//! Open when the observed failure rate crosses a threshold, so callers fail
//! fast with [`TransportError::CircuitOpen`] instead of burning retries
//! against a dead API. After a cool-down the breaker admits half-open
//! probes; a run of probe successes re-closes it, a probe failure re-opens
//! it. All timing is in virtual milliseconds, so tests are instantaneous
//! and deterministic.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{ModelRequest, ModelResponse, Transport, TransportError, VirtualClock};

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling window over which the failure rate is computed, virtual ms.
    pub window_ms: u64,
    /// Minimum events inside the window before the breaker may trip.
    pub min_samples: u32,
    /// Failure-rate threshold in `[0, 1]` that trips the breaker.
    pub failure_rate: f64,
    /// How long the breaker stays Open before admitting probes, virtual ms.
    pub cooldown_ms: u64,
    /// Consecutive half-open probe successes required to re-close.
    pub probe_count: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window_ms: 30_000,
            min_samples: 8,
            failure_rate: 0.5,
            cooldown_ms: 15_000,
            probe_count: 3,
        }
    }
}

/// The breaker's coarse state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Serving normally; failures are being tallied.
    Closed,
    /// Failing fast; no requests reach the transport until cool-down.
    Open,
    /// Cool-down elapsed; probe requests are being admitted.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Per-edge state-transition counts: how often the breaker crossed each
/// edge of its state machine. `opened` alone says a backend failed;
/// `opened` climbing in lock-step with `reclosed` says it is *flapping* —
/// recovering just long enough to re-close, then tripping again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Closed → Open trips (the failure window crossed the threshold).
    pub opened: u64,
    /// Open → HalfOpen moves (cool-down elapsed, probes admitted).
    pub probed: u64,
    /// HalfOpen → Closed recoveries (enough probes succeeded).
    pub reclosed: u64,
    /// HalfOpen → Open re-trips (a probe failed).
    pub reopened: u64,
}

impl BreakerTransitions {
    /// Total transitions across all edges.
    pub fn total(&self) -> u64 {
        self.opened + self.probed + self.reclosed + self.reopened
    }

    /// Completed open→closed→open cycles — the flap count. A breaker
    /// that tripped once and stayed open has `opened == 1, flaps == 0`;
    /// one that keeps bouncing has `flaps ≈ opened`.
    pub fn flaps(&self) -> u64 {
        self.reclosed.min(self.opened.saturating_sub(1)) + self.reopened
    }
}

/// A point-in-time copy of the breaker's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Virtual time at which the breaker last opened (0 if never).
    pub opened_at_ms: u64,
    /// Consecutive probe successes while half-open.
    pub probe_successes: u32,
    /// Total state transitions since construction.
    pub transitions: u64,
    /// Per-edge transition counts (which edges make up `transitions`).
    pub edges: BreakerTransitions,
    /// Requests rejected without reaching the transport.
    pub fail_fast: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    opened_at_ms: u64,
    probe_successes: u32,
    events: VecDeque<(u64, bool)>,
    transitions: u64,
    edges: BreakerTransitions,
    fail_fast: u64,
}

/// A Closed/Open/HalfOpen state machine over a rolling failure window.
///
/// ```
/// use std::sync::Arc;
/// use nbhd_client::{BreakerConfig, BreakerState, CircuitBreaker, VirtualClock};
///
/// let clock = Arc::new(VirtualClock::new());
/// let config = BreakerConfig { min_samples: 2, probe_count: 1, ..BreakerConfig::default() };
/// let breaker = CircuitBreaker::new(config, clock.clone());
/// breaker.try_acquire().unwrap();
/// breaker.record(false);
/// breaker.try_acquire().unwrap();
/// breaker.record(false);
/// assert_eq!(breaker.snapshot().state, BreakerState::Open);
/// let wait = breaker.try_acquire().unwrap_err(); // failing fast
/// clock.advance_ms(wait);
/// breaker.try_acquire().unwrap(); // half-open probe admitted
/// breaker.record(true);
/// assert_eq!(breaker.snapshot().state, BreakerState::Closed);
/// ```
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: Arc<VirtualClock>,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig, clock: Arc<VirtualClock>) -> CircuitBreaker {
        CircuitBreaker {
            config,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                opened_at_ms: 0,
                probe_successes: 0,
                events: VecDeque::new(),
                transitions: 0,
                edges: BreakerTransitions::default(),
                fail_fast: 0,
            }),
        }
    }

    /// Asks permission to send one request.
    ///
    /// While Open and inside the cool-down this fails fast. Once the
    /// cool-down elapses the breaker moves to HalfOpen and admits probes.
    ///
    /// # Errors
    ///
    /// Returns the remaining cool-down in virtual milliseconds.
    pub fn try_acquire(&self) -> Result<(), u64> {
        let now = self.clock.now_ms();
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let reopen_at = inner.opened_at_ms.saturating_add(self.config.cooldown_ms);
                if now >= reopen_at {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_successes = 0;
                    inner.transitions += 1;
                    inner.edges.probed += 1;
                    Ok(())
                } else {
                    inner.fail_fast += 1;
                    Err(reopen_at - now)
                }
            }
        }
    }

    /// Reports the outcome of an admitted request.
    pub fn record(&self, ok: bool) {
        let now = self.clock.now_ms();
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.events.push_back((now, ok));
                let horizon = now.saturating_sub(self.config.window_ms);
                while inner.events.front().is_some_and(|(t, _)| *t < horizon) {
                    inner.events.pop_front();
                }
                let total = inner.events.len() as u32;
                let failures = inner.events.iter().filter(|(_, ok)| !ok).count();
                if total >= self.config.min_samples.max(1)
                    && failures as f64 / f64::from(total) >= self.config.failure_rate
                {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ms = now;
                    inner.transitions += 1;
                    inner.edges.opened += 1;
                    inner.events.clear();
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    inner.probe_successes += 1;
                    if inner.probe_successes >= self.config.probe_count.max(1) {
                        inner.state = BreakerState::Closed;
                        inner.transitions += 1;
                        inner.edges.reclosed += 1;
                        inner.events.clear();
                    }
                } else {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ms = now;
                    inner.transitions += 1;
                    inner.edges.reopened += 1;
                }
            }
            // A late result from a request admitted before the trip: the
            // breaker already decided, so it carries no information.
            BreakerState::Open => {}
        }
    }

    /// The breaker's current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// A full bookkeeping snapshot (state, transitions, fail-fast count).
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.inner.lock();
        BreakerSnapshot {
            state: inner.state,
            opened_at_ms: inner.opened_at_ms,
            probe_successes: inner.probe_successes,
            transitions: inner.transitions,
            edges: inner.edges,
            fail_fast: inner.fail_fast,
        }
    }
}

/// A [`Transport`] decorator that runs every request through a
/// [`CircuitBreaker`].
///
/// While the breaker is Open, requests fail fast with
/// [`TransportError::CircuitOpen`] without touching the wrapped transport.
/// [`TransportError::BadRequest`] does not count against the breaker: a
/// malformed request says nothing about the service's health.
pub struct BreakerTransport {
    inner: Arc<dyn Transport>,
    breaker: CircuitBreaker,
}

impl BreakerTransport {
    /// Wraps a transport with a fresh breaker.
    pub fn new(
        inner: Arc<dyn Transport>,
        config: BreakerConfig,
        clock: Arc<VirtualClock>,
    ) -> BreakerTransport {
        BreakerTransport {
            inner,
            breaker: CircuitBreaker::new(config, clock),
        }
    }

    /// The wrapped breaker, for state inspection and health reporting.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }
}

impl Transport for BreakerTransport {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn send(&self, request: &ModelRequest) -> Result<ModelResponse, TransportError> {
        if let Err(retry_after_ms) = self.breaker.try_acquire() {
            return Err(TransportError::CircuitOpen { retry_after_ms });
        }
        let result = self.inner.send(request);
        match &result {
            Ok(_) => self.breaker.record(true),
            Err(TransportError::BadRequest(_)) => {}
            Err(_) => self.breaker.record(false),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(clock: &Arc<VirtualClock>) -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerConfig {
                window_ms: 10_000,
                min_samples: 4,
                failure_rate: 0.5,
                cooldown_ms: 5_000,
                probe_count: 2,
            },
            Arc::clone(clock),
        )
    }

    #[test]
    fn trips_at_failure_rate_threshold() {
        let clock = Arc::new(VirtualClock::new());
        let b = breaker(&clock);
        for _ in 0..3 {
            b.record(false);
            assert_eq!(b.state(), BreakerState::Closed, "below min samples");
        }
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.try_acquire().is_err());
        assert_eq!(b.snapshot().fail_fast, 1);
    }

    #[test]
    fn successes_keep_it_closed() {
        let clock = Arc::new(VirtualClock::new());
        let b = breaker(&clock);
        for i in 0..40 {
            b.record(i % 4 == 0); // 75% failures... inverted: 25% success
        }
        // 75% failure rate trips it
        assert_eq!(b.state(), BreakerState::Open);

        let healthy = breaker(&clock);
        for i in 0..40 {
            healthy.record(i % 4 != 0); // 25% failures: below the 50% bar
        }
        assert_eq!(healthy.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_then_probes_reclose() {
        let clock = Arc::new(VirtualClock::new());
        let b = breaker(&clock);
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let wait = b.try_acquire().unwrap_err();
        assert_eq!(wait, 5_000);
        clock.advance_ms(wait);
        b.try_acquire().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens() {
        let clock = Arc::new(VirtualClock::new());
        let b = breaker(&clock);
        for _ in 0..4 {
            b.record(false);
        }
        clock.advance_ms(5_000);
        b.try_acquire().unwrap();
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        // the cool-down restarts from the re-open
        assert!(b.try_acquire().is_err());
    }

    #[test]
    fn edge_counts_decompose_transitions_and_expose_flapping() {
        let clock = Arc::new(VirtualClock::new());
        let b = breaker(&clock);
        // Two full flap cycles: trip, cool down, probe back to closed.
        for _ in 0..2 {
            for _ in 0..4 {
                b.record(false);
            }
            assert_eq!(b.state(), BreakerState::Open);
            clock.advance_ms(5_000);
            b.try_acquire().unwrap();
            b.record(true);
            b.record(true);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // Third trip ends with a failed probe: HalfOpen → Open.
        for _ in 0..4 {
            b.record(false);
        }
        clock.advance_ms(5_000);
        b.try_acquire().unwrap();
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);

        let snap = b.snapshot();
        let edges = snap.edges;
        assert_eq!(edges.opened, 3);
        assert_eq!(edges.probed, 3);
        assert_eq!(edges.reclosed, 2);
        assert_eq!(edges.reopened, 1);
        assert_eq!(edges.total(), snap.transitions);
        // Two completed open→closed cycles plus one failed probe.
        assert_eq!(edges.flaps(), 3);

        // A breaker that tripped once and stayed open is not flapping.
        let once = breaker(&clock);
        for _ in 0..4 {
            once.record(false);
        }
        assert_eq!(once.snapshot().edges.opened, 1);
        assert_eq!(once.snapshot().edges.flaps(), 0);
    }

    #[test]
    fn old_events_age_out_of_the_window() {
        let clock = Arc::new(VirtualClock::new());
        let b = breaker(&clock);
        for _ in 0..3 {
            b.record(false);
        }
        // let the failures age out, then a mixed recent history stays closed
        clock.advance_ms(20_000);
        for _ in 0..3 {
            b.record(true);
        }
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_transport_fails_fast_when_open() {
        use crate::FaultProfile;
        use nbhd_geo::{RoadClass, Zoning};
        use nbhd_prompt::{Language, Prompt, PromptMode};
        use nbhd_scene::{SceneGenerator, ViewKind};
        use nbhd_types::{Heading, ImageId, LocationId};
        use nbhd_vlm::{gemini_15_pro, ImageContext, SamplerParams, VisionModel};

        let clock = Arc::new(VirtualClock::new());
        let dead = Arc::new(
            crate::SimulatedTransport::new(VisionModel::new(gemini_15_pro(), 1), 1).with_faults(
                FaultProfile {
                    rate_limit: 0.0,
                    timeout: 0.0,
                    server_error: 1.0,
                },
            ),
        );
        let wrapped = BreakerTransport::new(
            dead.clone(),
            BreakerConfig {
                min_samples: 3,
                cooldown_ms: 60_000,
                ..BreakerConfig::default()
            },
            Arc::clone(&clock),
        );
        let spec = SceneGenerator::new(1).compose_raw(
            ImageId::new(LocationId(0), Heading::North),
            Zoning::Urban,
            RoadClass::Multilane,
            ViewKind::AlongRoad,
        );
        let request = ModelRequest {
            context: ImageContext::from_scene(&spec, 1),
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: SamplerParams::default(),
        };
        for _ in 0..20 {
            let _ = wrapped.send(&request);
        }
        assert_eq!(wrapped.breaker().state(), BreakerState::Open);
        // only the pre-trip attempts reached the dead API
        assert_eq!(dead.attempts(), 3);
        assert!(matches!(
            wrapped.send(&request),
            Err(TransportError::CircuitOpen { .. })
        ));
    }
}
