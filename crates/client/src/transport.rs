//! The model-API transport abstraction and its simulated implementation.

use std::sync::atomic::{AtomicU64, Ordering};

use nbhd_prompt::Prompt;
use nbhd_types::rng::{child_seed_n, rng_from};
use nbhd_vlm::{ImageContext, SamplerParams, VisionModel};
use rand::Rng;

/// One vision-model request: an image context, a prompt plan, and sampler
/// parameters.
#[derive(Debug, Clone)]
pub struct ModelRequest {
    /// The image being asked about.
    pub context: ImageContext,
    /// The prompt plan (parallel or sequential, any language).
    pub prompt: Prompt,
    /// Sampler parameters.
    pub params: SamplerParams,
}

/// A successful response.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelResponse {
    /// One raw text per prompt message.
    pub texts: Vec<String>,
    /// Simulated latency of the request, milliseconds.
    pub latency_ms: f64,
    /// Input tokens consumed (prompt + image).
    pub input_tokens: u64,
    /// Output tokens produced.
    pub output_tokens: u64,
}

/// Transport-level failures, mirroring real API error classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// 429: back off and retry.
    RateLimited {
        /// Suggested backoff from the server, milliseconds.
        retry_after_ms: u64,
    },
    /// The request timed out.
    Timeout,
    /// 5xx: transient server failure.
    ServerError,
    /// 4xx: the request itself is invalid; retrying cannot help.
    BadRequest(String),
    /// The per-model circuit breaker is open: the request failed fast
    /// without reaching the API. Retrying immediately cannot help — the
    /// breaker will keep rejecting until its cool-down elapses.
    CircuitOpen {
        /// Remaining cool-down, virtual milliseconds.
        retry_after_ms: u64,
    },
}

impl TransportError {
    /// Whether a retry can plausibly succeed.
    ///
    /// [`TransportError::CircuitOpen`] is deliberately non-retryable: the
    /// whole point of failing fast is not to burn the retry budget against
    /// a tripped breaker.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            TransportError::BadRequest(_) | TransportError::CircuitOpen { .. }
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms} ms)")
            }
            TransportError::Timeout => write!(f, "request timed out"),
            TransportError::ServerError => write!(f, "server error"),
            TransportError::BadRequest(m) => write!(f, "bad request: {m}"),
            TransportError::CircuitOpen { retry_after_ms } => {
                write!(f, "circuit open (cool-down {retry_after_ms} ms)")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Something that can answer model requests.
///
/// Object-safe so executors can hold heterogeneous transports.
pub trait Transport: Send + Sync {
    /// The model name this transport reaches.
    fn model_name(&self) -> &str;

    /// Sends one request.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] on simulated (or real) API failure.
    fn send(&self, request: &ModelRequest) -> Result<ModelResponse, TransportError>;
}

/// Transient-failure injection rates for the simulated transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Fraction of attempts rejected with 429.
    pub rate_limit: f64,
    /// Fraction of attempts timing out.
    pub timeout: f64,
    /// Fraction of attempts failing with 5xx.
    pub server_error: f64,
}

impl FaultProfile {
    /// No injected faults.
    pub const NONE: FaultProfile = FaultProfile {
        rate_limit: 0.0,
        timeout: 0.0,
        server_error: 0.0,
    };

    /// A mildly flaky public API (~3% transient failures).
    pub const FLAKY: FaultProfile = FaultProfile {
        rate_limit: 0.015,
        timeout: 0.008,
        server_error: 0.007,
    };
}

/// A [`Transport`] backed by a simulated [`VisionModel`], with latency
/// modeling, token accounting, and fault injection. Distinct attempts see
/// distinct fault draws, so retries genuinely recover.
#[derive(Debug)]
pub struct SimulatedTransport {
    model: VisionModel,
    faults: FaultProfile,
    seed: u64,
    attempts: AtomicU64,
}

impl SimulatedTransport {
    /// Wraps a model with no fault injection.
    pub fn new(model: VisionModel, seed: u64) -> SimulatedTransport {
        SimulatedTransport {
            model,
            faults: FaultProfile::NONE,
            seed,
            attempts: AtomicU64::new(0),
        }
    }

    /// Sets the fault profile.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultProfile) -> SimulatedTransport {
        self.faults = faults;
        self
    }

    /// Total attempts observed (including failed ones).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Estimates token counts the way API billing does (~4 chars/token,
    /// plus a per-image vision surcharge).
    fn tokens(request: &ModelRequest, texts: &[String]) -> (u64, u64) {
        let prompt_chars: usize = request.prompt.messages.iter().map(|m| m.text.len()).sum();
        let image_tokens = 768u64; // vision models bill a fixed tile cost
        let input = image_tokens + (prompt_chars as u64).div_ceil(4);
        let output = (texts.iter().map(String::len).sum::<usize>() as u64).div_ceil(4);
        (input, output)
    }
}

impl Transport for SimulatedTransport {
    fn model_name(&self) -> &str {
        self.model.name()
    }

    fn send(&self, request: &ModelRequest) -> Result<ModelResponse, TransportError> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let mut rng = rng_from(child_seed_n(self.seed, "transport", attempt));

        // fault injection
        let roll: f64 = rng.random();
        if roll < self.faults.rate_limit {
            return Err(TransportError::RateLimited {
                retry_after_ms: rng.random_range(200..1500),
            });
        }
        if roll < self.faults.rate_limit + self.faults.timeout {
            return Err(TransportError::Timeout);
        }
        if roll < self.faults.rate_limit + self.faults.timeout + self.faults.server_error {
            return Err(TransportError::ServerError);
        }

        let texts = self.model.respond(&request.context, &request.prompt, &request.params);
        let base = self.model.profile().latency_ms;
        // latency: log-normal-ish around the profile mean
        let latency_ms = base * (0.6 + 0.8 * rng.random::<f64>()) + 40.0 * texts.len() as f64;
        let (input_tokens, output_tokens) = Self::tokens(request, &texts);
        Ok(ModelResponse {
            texts,
            latency_ms,
            input_tokens,
            output_tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbhd_geo::{RoadClass, Zoning};
    use nbhd_prompt::{Language, PromptMode};
    use nbhd_scene::{SceneGenerator, ViewKind};
    use nbhd_types::{Heading, ImageId, LocationId};
    use nbhd_vlm::gemini_15_pro;

    fn request(loc: u64) -> ModelRequest {
        let spec = SceneGenerator::new(5).compose_raw(
            ImageId::new(LocationId(loc), Heading::North),
            Zoning::Urban,
            RoadClass::Multilane,
            ViewKind::AlongRoad,
        );
        ModelRequest {
            context: ImageContext::from_scene(&spec, 5),
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: SamplerParams::default(),
        }
    }

    #[test]
    fn clean_transport_always_succeeds() {
        let t = SimulatedTransport::new(VisionModel::new(gemini_15_pro(), 5), 1);
        for loc in 0..20 {
            let resp = t.send(&request(loc)).unwrap();
            assert_eq!(resp.texts.len(), 1);
            assert!(resp.latency_ms > 0.0);
            assert!(resp.input_tokens > 768);
            assert!(resp.output_tokens > 0);
        }
        assert_eq!(t.attempts(), 20);
    }

    #[test]
    fn faults_inject_at_roughly_configured_rate() {
        let t = SimulatedTransport::new(VisionModel::new(gemini_15_pro(), 5), 2).with_faults(
            FaultProfile {
                rate_limit: 0.2,
                timeout: 0.1,
                server_error: 0.1,
            },
        );
        let mut failures = 0usize;
        for loc in 0..300 {
            if t.send(&request(loc % 10)).is_err() {
                failures += 1;
            }
        }
        assert!(
            (80..=160).contains(&failures),
            "~40% of 300 should fail, got {failures}"
        );
    }

    #[test]
    fn retryability_classification() {
        assert!(TransportError::Timeout.is_retryable());
        assert!(TransportError::ServerError.is_retryable());
        assert!(TransportError::RateLimited { retry_after_ms: 1 }.is_retryable());
        assert!(!TransportError::BadRequest("nope".into()).is_retryable());
        assert!(!TransportError::CircuitOpen { retry_after_ms: 9 }.is_retryable());
    }

    #[test]
    fn retries_see_fresh_fault_draws() {
        let t = SimulatedTransport::new(VisionModel::new(gemini_15_pro(), 5), 3).with_faults(
            FaultProfile {
                rate_limit: 0.5,
                timeout: 0.0,
                server_error: 0.0,
            },
        );
        let req = request(1);
        let mut succeeded = false;
        for _ in 0..20 {
            if t.send(&req).is_ok() {
                succeeded = true;
                break;
            }
        }
        assert!(succeeded, "a retry should eventually get through");
    }
}
