//! Cost and usage metering across models.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Usage counters for one model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelUsage {
    /// Successful requests.
    pub requests: u64,
    /// Attempts beyond the first (retries).
    pub retries: u64,
    /// Requests that exhausted retries.
    pub failures: u64,
    /// Input tokens billed.
    pub input_tokens: u64,
    /// Output tokens billed.
    pub output_tokens: u64,
    /// Dollars spent.
    pub usd: f64,
    /// Summed request latency, milliseconds.
    pub latency_ms: f64,
    /// Requests rejected instantly by an open circuit breaker (a subset of
    /// [`ModelUsage::failures`]).
    pub fail_fast: u64,
    /// Hedge backup requests fired.
    pub hedges_fired: u64,
    /// Hedge backups whose answer won the race.
    pub hedges_won: u64,
    /// Total virtual milliseconds spent waiting in retry backoff.
    pub backoff_ms: u64,
}

impl ModelUsage {
    /// Mean latency per successful request; 0 when none.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_ms / self.requests as f64
        }
    }
}

/// Thread-safe usage ledger keyed by model name.
///
/// ```
/// use nbhd_client::CostMeter;
/// let meter = CostMeter::new();
/// meter.record_success("gemini-1.5-pro", 1000, 50, 0.00125, 0.005, 900.0, 1);
/// let usage = meter.usage("gemini-1.5-pro").unwrap();
/// assert_eq!(usage.requests, 1);
/// assert!(usage.usd > 0.0);
/// assert!(meter.total_usd() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct CostMeter {
    ledger: Mutex<BTreeMap<String, ModelUsage>>,
}

impl CostMeter {
    /// An empty meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Records a successful request.
    #[allow(clippy::too_many_arguments)]
    pub fn record_success(
        &self,
        model: &str,
        input_tokens: u64,
        output_tokens: u64,
        usd_per_1k_input: f64,
        usd_per_1k_output: f64,
        latency_ms: f64,
        attempts: u32,
    ) {
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.requests += 1;
        u.retries += u64::from(attempts.saturating_sub(1));
        u.input_tokens += input_tokens;
        u.output_tokens += output_tokens;
        u.usd += input_tokens as f64 / 1000.0 * usd_per_1k_input
            + output_tokens as f64 / 1000.0 * usd_per_1k_output;
        u.latency_ms += latency_ms;
    }

    /// Records a request that exhausted its retries.
    pub fn record_failure(&self, model: &str, attempts: u32) {
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.failures += 1;
        u.retries += u64::from(attempts.saturating_sub(1));
    }

    /// Records a request rejected instantly by an open circuit breaker.
    /// Counts as a failure, but burns no retries and no server time.
    pub fn record_fail_fast(&self, model: &str) {
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.failures += 1;
        u.fail_fast += 1;
    }

    /// Adds hedging and backoff accounting for one request, successful or
    /// not. Kept separate from [`CostMeter::record_success`] so its widely
    /// used signature stays stable.
    pub fn record_resilience(&self, model: &str, hedges_fired: u32, hedges_won: u32, backoff_ms: u64) {
        if hedges_fired == 0 && hedges_won == 0 && backoff_ms == 0 {
            return;
        }
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.hedges_fired += u64::from(hedges_fired);
        u.hedges_won += u64::from(hedges_won);
        u.backoff_ms += backoff_ms;
    }

    /// Usage snapshot for one model.
    pub fn usage(&self, model: &str) -> Option<ModelUsage> {
        self.ledger.lock().get(model).copied()
    }

    /// Snapshot of all models' usage.
    pub fn snapshot(&self) -> BTreeMap<String, ModelUsage> {
        self.ledger.lock().clone()
    }

    /// Total dollars across models.
    pub fn total_usd(&self) -> f64 {
        self.ledger.lock().values().map(|u| u.usd).sum()
    }

    /// A one-line-per-model text report.
    pub fn report(&self) -> String {
        let ledger = self.ledger.lock();
        let mut out = String::from("model                 requests retries failures fastfail  hedges   tokens(in/out)      usd   mean-latency\n");
        for (name, u) in ledger.iter() {
            out.push_str(&format!(
                "{:<22} {:>7} {:>7} {:>8} {:>8} {:>4}/{:<3} {:>9}/{:<9} {:>8.4} {:>9.0} ms\n",
                name,
                u.requests,
                u.retries,
                u.failures,
                u.fail_fast,
                u.hedges_fired,
                u.hedges_won,
                u.input_tokens,
                u.output_tokens,
                u.usd,
                u.mean_latency_ms()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_model() {
        let m = CostMeter::new();
        m.record_success("a", 1000, 100, 0.001, 0.002, 500.0, 1);
        m.record_success("a", 1000, 100, 0.001, 0.002, 700.0, 3);
        m.record_success("b", 2000, 0, 0.01, 0.02, 100.0, 1);
        let a = m.usage("a").unwrap();
        assert_eq!(a.requests, 2);
        assert_eq!(a.retries, 2);
        assert!((a.usd - 2.0 * (0.001 + 0.0002)).abs() < 1e-12);
        assert!((a.mean_latency_ms() - 600.0).abs() < 1e-9);
        assert!((m.total_usd() - (a.usd + 0.02)).abs() < 1e-12);
    }

    #[test]
    fn failures_do_not_bill() {
        let m = CostMeter::new();
        m.record_failure("a", 4);
        let a = m.usage("a").unwrap();
        assert_eq!(a.failures, 1);
        assert_eq!(a.retries, 3);
        assert_eq!(a.usd, 0.0);
        assert_eq!(a.requests, 0);
        assert_eq!(a.mean_latency_ms(), 0.0);
    }

    #[test]
    fn report_lists_models() {
        let m = CostMeter::new();
        m.record_success("gemini", 10, 5, 0.1, 0.1, 1.0, 1);
        m.record_success("claude", 10, 5, 0.1, 0.1, 1.0, 1);
        let r = m.report();
        assert!(r.contains("gemini"));
        assert!(r.contains("claude"));
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(CostMeter::new().usage("nope").is_none());
    }

    #[test]
    fn fail_fast_counts_as_failure_without_retries() {
        let m = CostMeter::new();
        m.record_fail_fast("a");
        m.record_fail_fast("a");
        let a = m.usage("a").unwrap();
        assert_eq!(a.failures, 2);
        assert_eq!(a.fail_fast, 2);
        assert_eq!(a.retries, 0);
        assert_eq!(a.usd, 0.0);
    }

    #[test]
    fn resilience_counters_accumulate() {
        let m = CostMeter::new();
        m.record_resilience("a", 2, 1, 750);
        m.record_resilience("a", 1, 0, 250);
        m.record_resilience("a", 0, 0, 0); // no-op
        let a = m.usage("a").unwrap();
        assert_eq!(a.hedges_fired, 3);
        assert_eq!(a.hedges_won, 1);
        assert_eq!(a.backoff_ms, 1000);
    }
}
