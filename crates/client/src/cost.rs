//! Cost and usage metering across models.

use std::collections::BTreeMap;

use nbhd_obs::{Histogram, MetricsRegistry};
use parking_lot::Mutex;

/// The one token-to-USD pricing rule for the whole workspace: tokens are
/// billed per thousand, input and output at their own rates, in this exact
/// floating-point fold order. Every biller — [`CostMeter::record_success`],
/// per-line tenant billing in `nbhd-serve` — must route through this
/// function so a future price-model change can never diverge tenant bills
/// from the meter.
pub fn token_cost_usd(
    input_tokens: u64,
    output_tokens: u64,
    usd_per_1k_input: f64,
    usd_per_1k_output: f64,
) -> f64 {
    input_tokens as f64 / 1000.0 * usd_per_1k_input
        + output_tokens as f64 / 1000.0 * usd_per_1k_output
}

/// Usage counters for one model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelUsage {
    /// Successful requests.
    pub requests: u64,
    /// Attempts beyond the first (retries).
    pub retries: u64,
    /// Requests that exhausted retries.
    pub failures: u64,
    /// Input tokens billed.
    pub input_tokens: u64,
    /// Output tokens billed.
    pub output_tokens: u64,
    /// Dollars spent.
    pub usd: f64,
    /// Summed request latency, milliseconds.
    pub latency_ms: f64,
    /// Requests rejected instantly by an open circuit breaker (a subset of
    /// [`ModelUsage::failures`]).
    pub fail_fast: u64,
    /// Hedge backup requests fired.
    pub hedges_fired: u64,
    /// Hedge backups whose answer won the race.
    pub hedges_won: u64,
    /// Total virtual milliseconds spent waiting in retry backoff.
    pub backoff_ms: u64,
}

impl ModelUsage {
    /// Mean latency per successful request; 0 when none.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_ms / self.requests as f64
        }
    }
}

/// Thread-safe usage ledger keyed by model name.
///
/// ```
/// use nbhd_client::CostMeter;
/// let meter = CostMeter::new();
/// meter.record_success("gemini-1.5-pro", 1000, 50, 0.00125, 0.005, 900.0, 1);
/// let usage = meter.usage("gemini-1.5-pro").unwrap();
/// assert_eq!(usage.requests, 1);
/// assert!(usage.usd > 0.0);
/// assert!(meter.total_usd() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct CostMeter {
    ledger: Mutex<BTreeMap<String, ModelUsage>>,
    hists: Mutex<BTreeMap<String, ModelHists>>,
}

/// Per-model latency and token distributions, kept beside the ledger
/// (not inside [`ModelUsage`], which stays a `Copy` scalar bundle).
///
/// The latency histogram is deterministic even though request completion
/// order races: a histogram is order-independent, and for a fixed plan
/// and seed the *multiset* of simulated latency draws is worker-count
/// invariant — each draw is keyed by a global attempt index that every
/// schedule consumes exactly once per batch.
#[derive(Debug, Clone, Default, PartialEq)]
struct ModelHists {
    latency_ms: Histogram,
    input_tokens: Histogram,
    output_tokens: Histogram,
}

impl CostMeter {
    /// An empty meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Records a successful request.
    #[allow(clippy::too_many_arguments)]
    pub fn record_success(
        &self,
        model: &str,
        input_tokens: u64,
        output_tokens: u64,
        usd_per_1k_input: f64,
        usd_per_1k_output: f64,
        latency_ms: f64,
        attempts: u32,
    ) {
        {
            let mut ledger = self.ledger.lock();
            let u = ledger.entry(model.to_owned()).or_default();
            u.requests += 1;
            u.retries += u64::from(attempts.saturating_sub(1));
            u.input_tokens += input_tokens;
            u.output_tokens += output_tokens;
            u.usd += token_cost_usd(
                input_tokens,
                output_tokens,
                usd_per_1k_input,
                usd_per_1k_output,
            );
            u.latency_ms += latency_ms;
        }
        let mut hists = self.hists.lock();
        let h = hists.entry(model.to_owned()).or_default();
        h.latency_ms.record(latency_ms.round().max(0.0) as u64);
        h.input_tokens.record(input_tokens);
        h.output_tokens.record(output_tokens);
    }

    /// The per-request latency distribution for one model, or `None`
    /// when it has no successful requests yet.
    pub fn latency_hist(&self, model: &str) -> Option<Histogram> {
        self.hists.lock().get(model).map(|h| h.latency_ms.clone())
    }

    /// Records a request that exhausted its retries.
    pub fn record_failure(&self, model: &str, attempts: u32) {
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.failures += 1;
        u.retries += u64::from(attempts.saturating_sub(1));
    }

    /// Records a request rejected instantly by an open circuit breaker.
    /// Counts as a failure, but burns no retries and no server time.
    pub fn record_fail_fast(&self, model: &str) {
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.failures += 1;
        u.fail_fast += 1;
    }

    /// Adds hedging and backoff accounting for one request, successful or
    /// not. Kept separate from [`CostMeter::record_success`] so its widely
    /// used signature stays stable.
    pub fn record_resilience(
        &self,
        model: &str,
        hedges_fired: u32,
        hedges_won: u32,
        backoff_ms: u64,
    ) {
        if hedges_fired == 0 && hedges_won == 0 && backoff_ms == 0 {
            return;
        }
        let mut ledger = self.ledger.lock();
        let u = ledger.entry(model.to_owned()).or_default();
        u.hedges_fired += u64::from(hedges_fired);
        u.hedges_won += u64::from(hedges_won);
        u.backoff_ms += backoff_ms;
    }

    /// Usage snapshot for one model.
    pub fn usage(&self, model: &str) -> Option<ModelUsage> {
        self.ledger.lock().get(model).copied()
    }

    /// Snapshot of all models' usage.
    pub fn snapshot(&self) -> BTreeMap<String, ModelUsage> {
        self.ledger.lock().clone()
    }

    /// Total dollars across models.
    pub fn total_usd(&self) -> f64 {
        self.ledger.lock().values().map(|u| u.usd).sum()
    }

    /// A one-line-per-model text report.
    ///
    /// Column widths are computed from the content, so long model names
    /// and 7+ digit token counts stay aligned instead of overflowing a
    /// fixed-width template.
    pub fn report(&self) -> String {
        const COLUMNS: usize = 9;
        const HEADERS: [&str; COLUMNS] = [
            "model",
            "requests",
            "retries",
            "failures",
            "fastfail",
            "hedges",
            "tokens(in/out)",
            "usd",
            "mean-latency",
        ];
        let ledger = self.ledger.lock();
        let rows: Vec<[String; COLUMNS]> = ledger
            .iter()
            .map(|(name, u)| {
                [
                    name.clone(),
                    u.requests.to_string(),
                    u.retries.to_string(),
                    u.failures.to_string(),
                    u.fail_fast.to_string(),
                    format!("{}/{}", u.hedges_fired, u.hedges_won),
                    format!("{}/{}", u.input_tokens, u.output_tokens),
                    format!("{:.4}", u.usd),
                    format!("{:.0} ms", u.mean_latency_ms()),
                ]
            })
            .collect();
        let mut widths: [usize; COLUMNS] = HEADERS.map(str::len);
        for row in &rows {
            for (width, cell) in widths.iter_mut().zip(row.iter()) {
                *width = (*width).max(cell.len());
            }
        }
        let render = |cells: &[String; COLUMNS]| -> String {
            let mut line = format!("{:<width$}", cells[0], width = widths[0]);
            for (cell, width) in cells.iter().zip(widths.iter()).skip(1) {
                line.push_str(&format!("  {cell:>width$}"));
            }
            line.push('\n');
            line
        };
        let mut out = render(&HEADERS.map(str::to_string));
        for row in &rows {
            out.push_str(&render(row));
        }
        out
    }

    /// Publishes the ledger into a run-scoped metrics registry.
    ///
    /// Integer counters land in the deterministic namespace as
    /// `client.<model>.<field>`; dollar and latency sums accumulate in
    /// completion order, so they land in the gauge namespace, outside
    /// the deterministic surface. Latency and token *distributions* land
    /// in the deterministic histogram namespace under the same
    /// `client.<model>.<field>` names (histograms are order-independent,
    /// so the racing completion order does not reach them). Publishing
    /// uses absolute `set` semantics and is idempotent.
    pub fn publish(&self, registry: &MetricsRegistry) {
        {
            let ledger = self.ledger.lock();
            for (name, u) in ledger.iter() {
                let key = |field: &str| format!("client.{name}.{field}");
                registry.set(&key("requests"), u.requests);
                registry.set(&key("retries"), u.retries);
                registry.set(&key("failures"), u.failures);
                registry.set(&key("fail_fast"), u.fail_fast);
                registry.set(&key("input_tokens"), u.input_tokens);
                registry.set(&key("output_tokens"), u.output_tokens);
                registry.set(&key("hedges_fired"), u.hedges_fired);
                registry.set(&key("hedges_won"), u.hedges_won);
                registry.set(&key("backoff_ms"), u.backoff_ms);
                registry.set_gauge(&key("usd"), u.usd);
                registry.set_gauge(&key("latency_ms"), u.latency_ms);
            }
        }
        let hists = self.hists.lock();
        for (name, h) in hists.iter() {
            let key = |field: &str| format!("client.{name}.{field}");
            registry.set_hist(&key("latency_ms"), h.latency_ms.clone());
            registry.set_hist(&key("input_tokens"), h.input_tokens.clone());
            registry.set_hist(&key("output_tokens"), h.output_tokens.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_model() {
        let m = CostMeter::new();
        m.record_success("a", 1000, 100, 0.001, 0.002, 500.0, 1);
        m.record_success("a", 1000, 100, 0.001, 0.002, 700.0, 3);
        m.record_success("b", 2000, 0, 0.01, 0.02, 100.0, 1);
        let a = m.usage("a").unwrap();
        assert_eq!(a.requests, 2);
        assert_eq!(a.retries, 2);
        assert!((a.usd - 2.0 * (0.001 + 0.0002)).abs() < 1e-12);
        assert!((a.mean_latency_ms() - 600.0).abs() < 1e-9);
        assert!((m.total_usd() - (a.usd + 0.02)).abs() < 1e-12);
    }

    #[test]
    fn failures_do_not_bill() {
        let m = CostMeter::new();
        m.record_failure("a", 4);
        let a = m.usage("a").unwrap();
        assert_eq!(a.failures, 1);
        assert_eq!(a.retries, 3);
        assert_eq!(a.usd, 0.0);
        assert_eq!(a.requests, 0);
        assert_eq!(a.mean_latency_ms(), 0.0);
    }

    #[test]
    fn report_lists_models() {
        let m = CostMeter::new();
        m.record_success("gemini", 10, 5, 0.1, 0.1, 1.0, 1);
        m.record_success("claude", 10, 5, 0.1, 0.1, 1.0, 1);
        let r = m.report();
        assert!(r.contains("gemini"));
        assert!(r.contains("claude"));
    }

    #[test]
    fn report_golden_output_for_long_names_and_wide_tokens() {
        let m = CostMeter::new();
        m.record_success(
            "a-very-long-model-name-v2.5-experimental", // 40 chars
            1_234_567,
            7_654_321,
            0.001,
            0.002,
            500.0,
            2,
        );
        m.record_failure("tiny", 3);
        m.record_fail_fast("tiny");
        m.record_resilience("tiny", 2, 1, 750);
        let report = m.report();
        // widths derived by hand from the content above: model 40,
        // requests 8, retries 7, failures 8, fastfail 8, hedges 6,
        // tokens(in/out) 15, usd 7, mean-latency 12
        let expected = format!(
            "{:<40}  {:>8}  {:>7}  {:>8}  {:>8}  {:>6}  {:>15}  {:>7}  {:>12}\n\
             {:<40}  {:>8}  {:>7}  {:>8}  {:>8}  {:>6}  {:>15}  {:>7}  {:>12}\n\
             {:<40}  {:>8}  {:>7}  {:>8}  {:>8}  {:>6}  {:>15}  {:>7}  {:>12}\n",
            "model",
            "requests",
            "retries",
            "failures",
            "fastfail",
            "hedges",
            "tokens(in/out)",
            "usd",
            "mean-latency",
            "a-very-long-model-name-v2.5-experimental",
            1,
            1,
            0,
            0,
            "0/0",
            "1234567/7654321",
            "16.5432",
            "500 ms",
            "tiny",
            0,
            2,
            2,
            1,
            "2/1",
            "0/0",
            "0.0000",
            "0 ms",
        );
        assert_eq!(report, expected);
        // the report is one aligned grid: every line has equal length
        let lens: Vec<usize> = report.lines().map(str::len).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn publish_is_idempotent_and_splits_namespaces() {
        let m = CostMeter::new();
        m.record_success("gemini", 1000, 50, 0.00125, 0.005, 900.0, 2);
        m.record_resilience("gemini", 1, 1, 300);
        let registry = MetricsRegistry::new();
        m.publish(&registry);
        m.publish(&registry); // absolute set semantics: no double count
        let snap = registry.snapshot();
        assert_eq!(snap.counters["client.gemini.requests"], 1);
        assert_eq!(snap.counters["client.gemini.retries"], 1);
        assert_eq!(snap.counters["client.gemini.input_tokens"], 1000);
        assert_eq!(snap.counters["client.gemini.backoff_ms"], 300);
        assert!(!snap.counters.contains_key("client.gemini.usd"));
        let usd = snap.gauges["client.gemini.usd"];
        assert!((usd - 0.0015).abs() < 1e-9); // 1000/1k*0.00125 + 50/1k*0.005
        assert!(snap.gauges.contains_key("client.gemini.latency_ms"));
    }

    #[test]
    fn unknown_model_is_none() {
        let m = CostMeter::new();
        assert!(m.usage("nope").is_none());
        assert!(m.latency_hist("nope").is_none());
    }

    #[test]
    fn latency_and_token_hists_track_per_request_distributions() {
        let m = CostMeter::new();
        m.record_success("a", 1000, 100, 0.001, 0.002, 500.4, 1);
        m.record_success("a", 2000, 200, 0.001, 0.002, 699.6, 1);
        let lat = m.latency_hist("a").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.min(), 500); // 500.4 rounds down
        assert_eq!(lat.max(), 700); // 699.6 rounds up
        let registry = MetricsRegistry::new();
        m.publish(&registry);
        m.publish(&registry); // set_hist semantics: no double count
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["client.a.latency_ms"], lat);
        assert_eq!(snap.histograms["client.a.input_tokens"].sum(), 3000);
        assert_eq!(snap.histograms["client.a.output_tokens"].max(), 200);
        // same names exist as counters; the namespaces are independent
        assert_eq!(snap.counters["client.a.input_tokens"], 3000);
    }

    #[test]
    fn fail_fast_counts_as_failure_without_retries() {
        let m = CostMeter::new();
        m.record_fail_fast("a");
        m.record_fail_fast("a");
        let a = m.usage("a").unwrap();
        assert_eq!(a.failures, 2);
        assert_eq!(a.fail_fast, 2);
        assert_eq!(a.retries, 0);
        assert_eq!(a.usd, 0.0);
    }

    #[test]
    fn resilience_counters_accumulate() {
        let m = CostMeter::new();
        m.record_resilience("a", 2, 1, 750);
        m.record_resilience("a", 1, 0, 250);
        m.record_resilience("a", 0, 0, 0); // no-op
        let a = m.usage("a").unwrap();
        assert_eq!(a.hedges_fired, 3);
        assert_eq!(a.hedges_won, 1);
        assert_eq!(a.backoff_ms, 1000);
    }
}
