//! Per-model health aggregation: availability, breaker activity, and
//! resilience counters, rendered through `nbhd-eval`'s report machinery.

use nbhd_eval::{render_health_table, HealthRow};

use crate::{BreakerSnapshot, ModelUsage};

/// One model's health over a run, combining cost-meter usage with the
/// member's circuit-breaker bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHealth {
    /// Model name.
    pub model: String,
    /// Usage counters from the [`crate::CostMeter`].
    pub usage: ModelUsage,
    /// The member's breaker snapshot.
    pub breaker: BreakerSnapshot,
}

impl ModelHealth {
    /// Fraction of requests answered, in `[0, 1]`; `1.0` with no traffic.
    pub fn availability(&self) -> f64 {
        let total = self.usage.requests + self.usage.failures;
        if total == 0 {
            1.0
        } else {
            self.usage.requests as f64 / total as f64
        }
    }

    /// Converts to an `nbhd-eval` report row.
    pub fn to_row(&self) -> HealthRow {
        HealthRow {
            model: self.model.clone(),
            availability: self.availability(),
            breaker_state: self.breaker.state.to_string(),
            transitions: self.breaker.transitions,
            flaps: self.breaker.edges.flaps(),
            retries: self.usage.retries,
            fail_fast: self.usage.fail_fast,
            hedges: (self.usage.hedges_fired, self.usage.hedges_won),
            backoff_ms: self.usage.backoff_ms,
        }
    }
}

/// A whole-ensemble health report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// Per-model health, in ensemble member order.
    pub models: Vec<ModelHealth>,
}

impl HealthReport {
    /// All models as `nbhd-eval` report rows.
    pub fn rows(&self) -> Vec<HealthRow> {
        self.models.iter().map(ModelHealth::to_row).collect()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self, title: &str) -> String {
        render_health_table(title, &self.rows())
    }

    /// The worst availability across models; `1.0` when empty.
    pub fn min_availability(&self) -> f64 {
        self.models
            .iter()
            .map(ModelHealth::availability)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BreakerState;

    fn health(model: &str, requests: u64, failures: u64) -> ModelHealth {
        ModelHealth {
            model: model.into(),
            usage: ModelUsage {
                requests,
                failures,
                ..ModelUsage::default()
            },
            breaker: BreakerSnapshot {
                state: BreakerState::Closed,
                opened_at_ms: 0,
                probe_successes: 0,
                transitions: 0,
                edges: crate::BreakerTransitions::default(),
                fail_fast: 0,
            },
        }
    }

    #[test]
    fn availability_is_answered_fraction() {
        assert!((health("a", 90, 10).availability() - 0.9).abs() < 1e-12);
        assert_eq!(health("b", 0, 0).availability(), 1.0, "no traffic");
        assert_eq!(health("c", 0, 5).availability(), 0.0);
    }

    #[test]
    fn report_renders_every_model() {
        let report = HealthReport {
            models: vec![health("gemini", 100, 0), health("grok", 5, 95)],
        };
        let text = report.render("Ensemble health");
        assert!(text.contains("Ensemble health"));
        assert!(text.contains("gemini"));
        assert!(text.contains("grok"));
        assert!((report.min_availability() - 0.05).abs() < 1e-12);
    }
}
