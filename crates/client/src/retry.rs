//! Retry with exponential backoff and jitter.

use std::sync::Arc;

use nbhd_types::rng::{child_seed_n, rng_from};
use rand::Rng;

use crate::{ModelRequest, ModelResponse, Transport, TransportError, VirtualClock};

/// Retry policy: exponential backoff with full jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay, milliseconds.
    pub base_ms: u64,
    /// Backoff multiplier per attempt.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: the delay is scaled by a uniform draw
    /// from `[1 - jitter, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 250,
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based), honoring any
    /// server-provided `retry_after_ms`.
    pub fn backoff_ms<R: Rng + ?Sized>(
        &self,
        attempt: u32,
        server_hint_ms: Option<u64>,
        rng: &mut R,
    ) -> u64 {
        let exp = self.base_ms as f64 * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let jittered = exp * (1.0 - self.jitter * rng.random::<f64>());
        (jittered as u64).max(server_hint_ms.unwrap_or(0)).max(1)
    }
}

/// Outcome of a retried request, with attempt accounting.
#[derive(Debug, Clone)]
pub struct RetriedResponse {
    /// The final response.
    pub response: ModelResponse,
    /// Attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// Total virtual milliseconds spent in backoff waits.
    pub backoff_ms: u64,
}

/// Sends a request through a transport with retries, advancing the virtual
/// clock through latency and backoff.
///
/// # Errors
///
/// Returns the last [`TransportError`] once attempts are exhausted, or
/// immediately for non-retryable errors.
pub fn send_with_retry(
    transport: &dyn Transport,
    request: &ModelRequest,
    policy: &RetryPolicy,
    clock: &Arc<VirtualClock>,
    seed: u64,
) -> Result<RetriedResponse, TransportError> {
    let mut rng = rng_from(child_seed_n(seed, "retry", request.context.image.key()));
    let mut backoff_total = 0u64;
    let mut attempt = 1u32;
    loop {
        match transport.send(request) {
            Ok(response) => {
                clock.advance_ms(response.latency_ms as u64);
                return Ok(RetriedResponse {
                    response,
                    attempts: attempt,
                    backoff_ms: backoff_total,
                });
            }
            Err(err) => {
                if !err.is_retryable() || attempt >= policy.max_attempts {
                    return Err(err);
                }
                let hint = match &err {
                    TransportError::RateLimited { retry_after_ms } => Some(*retry_after_ms),
                    _ => None,
                };
                let wait = policy.backoff_ms(attempt, hint, &mut rng);
                clock.advance_ms(wait);
                backoff_total += wait;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbhd_types::rng::rng_from;

    /// A scripted transport failing a fixed number of times.
    struct Flaky {
        fail_first: u32,
        err: TransportError,
        calls: std::sync::atomic::AtomicU32,
    }

    impl Transport for Flaky {
        fn model_name(&self) -> &str {
            "flaky"
        }
        fn send(&self, _request: &ModelRequest) -> Result<ModelResponse, TransportError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.fail_first {
                Err(self.err.clone())
            } else {
                Ok(ModelResponse {
                    texts: vec!["Yes".into()],
                    latency_ms: 100.0,
                    input_tokens: 10,
                    output_tokens: 1,
                })
            }
        }
    }

    fn request() -> ModelRequest {
        use nbhd_geo::{RoadClass, Zoning};
        use nbhd_prompt::{Language, Prompt, PromptMode};
        use nbhd_scene::{SceneGenerator, ViewKind};
        use nbhd_types::{Heading, ImageId, LocationId};
        let spec = SceneGenerator::new(5).compose_raw(
            ImageId::new(LocationId(0), Heading::North),
            Zoning::Urban,
            RoadClass::Multilane,
            ViewKind::AlongRoad,
        );
        ModelRequest {
            context: nbhd_vlm::ImageContext::from_scene(&spec, 5),
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: nbhd_vlm::SamplerParams::default(),
        }
    }

    #[test]
    fn retries_until_success() {
        let t = Flaky {
            fail_first: 2,
            err: TransportError::ServerError,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let out = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap();
        assert_eq!(out.attempts, 3);
        assert!(out.backoff_ms > 0);
        assert!(clock.now_ms() >= out.backoff_ms + 100);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let t = Flaky {
            fail_first: 100,
            err: TransportError::Timeout,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let err = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
        assert_eq!(t.calls.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn bad_requests_are_not_retried() {
        let t = Flaky {
            fail_first: 100,
            err: TransportError::BadRequest("bad".into()),
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let _ = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap_err();
        assert_eq!(t.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_grows_and_respects_server_hint() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = rng_from(1);
        assert_eq!(p.backoff_ms(1, None, &mut rng), 250);
        assert_eq!(p.backoff_ms(2, None, &mut rng), 500);
        assert_eq!(p.backoff_ms(3, None, &mut rng), 1000);
        assert_eq!(p.backoff_ms(1, Some(5000), &mut rng), 5000);
    }

    #[test]
    fn jitter_spreads_delays() {
        let p = RetryPolicy::default();
        let mut rng = rng_from(2);
        let delays: Vec<u64> = (0..50).map(|_| p.backoff_ms(2, None, &mut rng)).collect();
        let min = *delays.iter().min().unwrap();
        let max = *delays.iter().max().unwrap();
        assert!(max > min, "jitter must vary delays");
        assert!(min >= 250 && max <= 500, "range [{min}, {max}]");
    }
}
