//! Retry with exponential backoff, jitter, a backoff cap, deadline
//! budgets, and optional hedging — all accounted against the virtual clock.

use std::sync::Arc;

use nbhd_types::rng::{child_seed_n, rng_from};
use rand::Rng;

use crate::hedge::hedged_attempt;
use crate::{HedgePolicy, ModelRequest, ModelResponse, Transport, TransportError, VirtualClock};

/// Virtual milliseconds a failed (non-timeout) attempt costs: one server
/// round-trip to learn about the 4xx/5xx/429.
pub const ERROR_RTT_MS: u64 = 50;

/// Retry policy: exponential backoff with full jitter, capped, under an
/// optional total deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay, milliseconds.
    pub base_ms: u64,
    /// Backoff multiplier per attempt.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: the delay is scaled by a uniform draw
    /// from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Cap on any single backoff delay, milliseconds. Without a cap a
    /// large `max_attempts` compounds into multi-minute virtual waits.
    /// Server-provided `retry_after_ms` hints still override the cap.
    pub max_ms: u64,
    /// Virtual milliseconds a timed-out attempt costs before the client
    /// gives up on it (the request's timeout budget).
    pub timeout_ms: u64,
    /// Optional total per-request deadline, virtual milliseconds, covering
    /// attempt latency, failure charges, and backoff. Once the budget
    /// cannot cover the next backoff, the request gives up.
    pub deadline_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 250,
            multiplier: 2.0,
            jitter: 0.5,
            max_ms: 30_000,
            timeout_ms: 8_000,
            deadline_ms: None,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based), honoring any
    /// server-provided `retry_after_ms` and the [`RetryPolicy::max_ms`]
    /// cap (the server hint wins over the cap).
    pub fn backoff_ms<R: Rng + ?Sized>(
        &self,
        attempt: u32,
        server_hint_ms: Option<u64>,
        rng: &mut R,
    ) -> u64 {
        let exp = self.base_ms as f64 * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.max_ms as f64);
        let jittered = capped * (1.0 - self.jitter * rng.random::<f64>());
        (jittered as u64).max(server_hint_ms.unwrap_or(0)).max(1)
    }

    /// Virtual milliseconds a failed attempt consumes: the timeout budget
    /// for [`TransportError::Timeout`], nothing for breaker fail-fasts
    /// (they never leave the client), and a server round-trip otherwise.
    pub fn failure_charge_ms(&self, err: &TransportError) -> u64 {
        match err {
            TransportError::Timeout => self.timeout_ms,
            TransportError::CircuitOpen { .. } => 0,
            _ => ERROR_RTT_MS,
        }
    }
}

/// Outcome of a retried request, with attempt accounting.
#[derive(Debug, Clone)]
pub struct RetriedResponse {
    /// The final response.
    pub response: ModelResponse,
    /// Attempts used (1 = first try succeeded). Hedge backups are counted
    /// separately in [`RetriedResponse::hedges_fired`].
    pub attempts: u32,
    /// Total virtual milliseconds spent in backoff waits.
    pub backoff_ms: u64,
    /// Hedge backups fired across the attempts.
    pub hedges_fired: u32,
    /// Hedge backups whose answer won.
    pub hedges_won: u32,
}

/// A request that gave up, with honest accounting of what it burned.
#[derive(Debug, Clone)]
pub struct RetryFailure {
    /// The final error.
    pub error: TransportError,
    /// Attempts actually made — a non-retryable `BadRequest` fails after
    /// exactly 1, not `max_attempts`.
    pub attempts: u32,
    /// Total virtual milliseconds spent in backoff waits.
    pub backoff_ms: u64,
    /// Hedge backups fired across the attempts.
    pub hedges_fired: u32,
    /// Hedge backups whose answer won.
    pub hedges_won: u32,
    /// Whether the request gave up because the deadline budget could not
    /// cover another backoff (rather than exhausting `max_attempts`).
    pub deadline_exceeded: bool,
}

impl RetryFailure {
    /// Whether the request was rejected by an open circuit breaker without
    /// reaching the API.
    pub fn failed_fast(&self) -> bool {
        matches!(self.error, TransportError::CircuitOpen { .. })
    }
}

/// Sends a request through a transport with retries, advancing the virtual
/// clock through attempt latency, failure charges, and backoff.
///
/// # Errors
///
/// Returns a [`RetryFailure`] carrying the last [`TransportError`] once
/// attempts (or the deadline budget) are exhausted, or immediately for
/// non-retryable errors.
pub fn send_with_retry(
    transport: &dyn Transport,
    request: &ModelRequest,
    policy: &RetryPolicy,
    clock: &Arc<VirtualClock>,
    seed: u64,
) -> Result<RetriedResponse, RetryFailure> {
    send_resilient(transport, request, policy, None, clock, seed)
}

/// [`send_with_retry`] plus optional tail-latency hedging: each attempt may
/// fire a backup request per the [`HedgePolicy`], taking the first success.
///
/// # Errors
///
/// Returns a [`RetryFailure`] carrying the last [`TransportError`] once
/// attempts (or the deadline budget) are exhausted, or immediately for
/// non-retryable errors.
pub fn send_resilient(
    transport: &dyn Transport,
    request: &ModelRequest,
    policy: &RetryPolicy,
    hedge: Option<&HedgePolicy>,
    clock: &Arc<VirtualClock>,
    seed: u64,
) -> Result<RetriedResponse, RetryFailure> {
    let mut rng = rng_from(child_seed_n(seed, "retry", request.context.image.key()));
    let mut backoff_total = 0u64;
    let mut spent_ms = 0u64;
    let mut hedges_fired = 0u32;
    let mut hedges_won = 0u32;
    let mut attempt = 1u32;
    loop {
        let outcome = hedged_attempt(transport, request, hedge, policy);
        clock.advance_ms(outcome.elapsed_ms);
        spent_ms += outcome.elapsed_ms;
        hedges_fired += u32::from(outcome.fired);
        hedges_won += u32::from(outcome.won);
        match outcome.result {
            Ok(response) => {
                return Ok(RetriedResponse {
                    response,
                    attempts: attempt,
                    backoff_ms: backoff_total,
                    hedges_fired,
                    hedges_won,
                });
            }
            Err(error) => {
                if !error.is_retryable() || attempt >= policy.max_attempts {
                    return Err(RetryFailure {
                        error,
                        attempts: attempt,
                        backoff_ms: backoff_total,
                        hedges_fired,
                        hedges_won,
                        deadline_exceeded: false,
                    });
                }
                let hint = match &error {
                    TransportError::RateLimited { retry_after_ms } => Some(*retry_after_ms),
                    _ => None,
                };
                let wait = policy.backoff_ms(attempt, hint, &mut rng);
                if let Some(deadline) = policy.deadline_ms {
                    if spent_ms.saturating_add(wait) > deadline {
                        return Err(RetryFailure {
                            error,
                            attempts: attempt,
                            backoff_ms: backoff_total,
                            hedges_fired,
                            hedges_won,
                            deadline_exceeded: true,
                        });
                    }
                }
                clock.advance_ms(wait);
                spent_ms += wait;
                backoff_total += wait;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbhd_types::rng::rng_from;

    /// A scripted transport failing a fixed number of times.
    struct Flaky {
        fail_first: u32,
        err: TransportError,
        calls: std::sync::atomic::AtomicU32,
    }

    impl Transport for Flaky {
        fn model_name(&self) -> &str {
            "flaky"
        }
        fn send(&self, _request: &ModelRequest) -> Result<ModelResponse, TransportError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.fail_first {
                Err(self.err.clone())
            } else {
                Ok(ModelResponse {
                    texts: vec!["Yes".into()],
                    latency_ms: 100.0,
                    input_tokens: 10,
                    output_tokens: 1,
                })
            }
        }
    }

    fn request() -> ModelRequest {
        use nbhd_geo::{RoadClass, Zoning};
        use nbhd_prompt::{Language, Prompt, PromptMode};
        use nbhd_scene::{SceneGenerator, ViewKind};
        use nbhd_types::{Heading, ImageId, LocationId};
        let spec = SceneGenerator::new(5).compose_raw(
            ImageId::new(LocationId(0), Heading::North),
            Zoning::Urban,
            RoadClass::Multilane,
            ViewKind::AlongRoad,
        );
        ModelRequest {
            context: nbhd_vlm::ImageContext::from_scene(&spec, 5),
            prompt: Prompt::build(Language::English, PromptMode::Parallel),
            params: nbhd_vlm::SamplerParams::default(),
        }
    }

    #[test]
    fn retries_until_success() {
        let t = Flaky {
            fail_first: 2,
            err: TransportError::ServerError,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let out = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap();
        assert_eq!(out.attempts, 3);
        assert!(out.backoff_ms > 0);
        assert!(clock.now_ms() >= out.backoff_ms + 100);
    }

    #[test]
    fn gives_up_after_max_attempts_with_honest_accounting() {
        let t = Flaky {
            fail_first: 100,
            err: TransportError::Timeout,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let fail = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap_err();
        assert_eq!(fail.error, TransportError::Timeout);
        assert_eq!(fail.attempts, 4);
        assert!(!fail.deadline_exceeded);
        assert_eq!(t.calls.load(std::sync::atomic::Ordering::SeqCst), 4);
        // each timed-out attempt charges the timeout budget to the clock
        let policy = RetryPolicy::default();
        assert!(clock.now_ms() >= 4 * policy.timeout_ms + fail.backoff_ms);
    }

    #[test]
    fn bad_requests_fail_after_exactly_one_attempt() {
        let t = Flaky {
            fail_first: 100,
            err: TransportError::BadRequest("bad".into()),
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let fail = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap_err();
        assert_eq!(fail.attempts, 1, "non-retryable errors burn one attempt");
        assert_eq!(fail.backoff_ms, 0);
        assert_eq!(t.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_attempts_charge_virtual_time() {
        let t = Flaky {
            fail_first: 100,
            err: TransportError::ServerError,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let fail = send_with_retry(&t, &request(), &RetryPolicy::default(), &clock, 1).unwrap_err();
        // 4 failed round-trips plus the backoff waits
        assert_eq!(clock.now_ms(), 4 * ERROR_RTT_MS + fail.backoff_ms);
    }

    #[test]
    fn deadline_budget_caps_retry_spend() {
        let t = Flaky {
            fail_first: 100,
            err: TransportError::ServerError,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let policy = RetryPolicy {
            max_attempts: 50,
            deadline_ms: Some(2_000),
            ..RetryPolicy::default()
        };
        let fail = send_with_retry(&t, &request(), &policy, &clock, 1).unwrap_err();
        assert!(fail.deadline_exceeded);
        assert!(fail.attempts < 50, "deadline must cut attempts short");
        // the clock never runs past the deadline (the rejected backoff is
        // not taken)
        assert!(clock.now_ms() <= 2_000 + policy.timeout_ms);
    }

    #[test]
    fn backoff_grows_capped_and_respects_server_hint() {
        let p = RetryPolicy {
            jitter: 0.0,
            max_ms: 800,
            ..RetryPolicy::default()
        };
        let mut rng = rng_from(1);
        assert_eq!(p.backoff_ms(1, None, &mut rng), 250);
        assert_eq!(p.backoff_ms(2, None, &mut rng), 500);
        assert_eq!(p.backoff_ms(3, None, &mut rng), 800, "capped at max_ms");
        assert_eq!(p.backoff_ms(8, None, &mut rng), 800, "stays capped");
        assert_eq!(p.backoff_ms(1, Some(5000), &mut rng), 5000, "hint beats cap");
    }

    #[test]
    fn jitter_spreads_delays() {
        let p = RetryPolicy::default();
        let mut rng = rng_from(2);
        let delays: Vec<u64> = (0..50).map(|_| p.backoff_ms(2, None, &mut rng)).collect();
        let min = *delays.iter().min().unwrap();
        let max = *delays.iter().max().unwrap();
        assert!(max > min, "jitter must vary delays");
        assert!(min >= 250 && max <= 500, "range [{min}, {max}]");
    }

    #[test]
    fn hedging_rescues_a_failing_primary() {
        // fails once, then succeeds: with a hedge the backup answers inside
        // the first attempt, so no retry/backoff happens at all
        let t = Flaky {
            fail_first: 1,
            err: TransportError::ServerError,
            calls: Default::default(),
        };
        let clock = Arc::new(VirtualClock::new());
        let out = send_resilient(
            &t,
            &request(),
            &RetryPolicy::default(),
            Some(&HedgePolicy::after_ms(10)),
            &clock,
            1,
        )
        .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.hedges_fired, 1);
        assert_eq!(out.hedges_won, 1);
        assert_eq!(out.backoff_ms, 0);
    }
}
