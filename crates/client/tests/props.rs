//! Property-based tests for rate limiting, retry policy, circuit breaking,
//! and cost metering.

use std::sync::Arc;

use nbhd_client::{
    BreakerConfig, BreakerState, CircuitBreaker, CostMeter, RetryPolicy, TokenBucket, VirtualClock,
};
use nbhd_types::rng::rng_from;
use proptest::prelude::*;

proptest! {
    #[test]
    fn bucket_throughput_never_exceeds_rate(
        capacity in 1u32..10,
        rate in 0.5f64..50.0,
        draws in 10usize..120,
    ) {
        let clock = Arc::new(VirtualClock::new());
        let bucket = TokenBucket::new(capacity, rate, clock.clone());
        for _ in 0..draws {
            bucket.acquire_blocking();
        }
        let elapsed_s = clock.now_ms() as f64 / 1000.0;
        // tokens delivered <= burst + rate * elapsed (+1 rounding slack)
        let max_allowed = capacity as f64 + rate * elapsed_s + 1.0;
        prop_assert!(
            draws as f64 <= max_allowed,
            "delivered {draws} in {elapsed_s:.2}s at rate {rate}/s cap {capacity}"
        );
    }

    #[test]
    fn backoff_is_monotone_in_attempt_without_jitter(base in 1u64..1000, mult in 1.0f64..3.0) {
        let p = RetryPolicy {
            max_attempts: 8,
            base_ms: base,
            multiplier: mult,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = rng_from(1);
        let mut prev = 0u64;
        for attempt in 1..=6 {
            let d = p.backoff_ms(attempt, None, &mut rng);
            prop_assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            prev = d;
        }
    }

    #[test]
    fn backoff_respects_server_hint(base in 1u64..100, hint in 0u64..10_000, seed in 0u64..50) {
        let p = RetryPolicy {
            max_attempts: 4,
            base_ms: base,
            multiplier: 2.0,
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let mut rng = rng_from(seed);
        let d = p.backoff_ms(1, Some(hint), &mut rng);
        prop_assert!(d >= hint.max(1));
    }

    #[test]
    fn jittered_backoff_stays_in_envelope(attempt in 1u32..6, jitter in 0.0f64..=1.0, seed in 0u64..100) {
        let p = RetryPolicy {
            max_attempts: 8,
            base_ms: 100,
            multiplier: 2.0,
            jitter,
            ..RetryPolicy::default()
        };
        let mut rng = rng_from(seed);
        let nominal = 100.0 * 2.0f64.powi(attempt as i32 - 1);
        let d = p.backoff_ms(attempt, None, &mut rng) as f64;
        prop_assert!(d <= nominal + 1.0);
        prop_assert!(d >= nominal * (1.0 - jitter) - 1.0);
    }

    #[test]
    fn cost_meter_total_equals_sum_of_models(
        records in proptest::collection::vec((0u8..4, 1u64..5000, 0u64..2000), 0..40),
    ) {
        let meter = CostMeter::new();
        for (model_idx, input, output) in &records {
            let name = ["a", "b", "c", "d"][*model_idx as usize];
            meter.record_success(name, *input, *output, 0.001, 0.002, 10.0, 1);
        }
        let total = meter.total_usd();
        let by_model: f64 = meter.snapshot().values().map(|u| u.usd).sum();
        prop_assert!((total - by_model).abs() < 1e-9);
        let request_count: u64 = meter.snapshot().values().map(|u| u.requests).sum();
        prop_assert_eq!(request_count as usize, records.len());
    }

    #[test]
    fn virtual_clock_is_monotone(deltas in proptest::collection::vec(0u64..10_000, 1..50)) {
        let clock = VirtualClock::new();
        let mut prev = 0;
        for d in deltas {
            let now = clock.advance_ms(d);
            prop_assert!(now >= prev);
            prop_assert_eq!(now, prev + d);
            prev = now;
        }
    }

    #[test]
    fn capped_backoff_never_exceeds_max_ms(
        base in 1u64..5_000,
        mult in 1.0f64..4.0,
        attempt in 1u32..12,
        max_ms in 1u64..20_000,
        jitter in 0.0f64..=1.0,
        seed in 0u64..100,
    ) {
        let p = RetryPolicy {
            base_ms: base,
            multiplier: mult,
            jitter,
            max_ms,
            ..RetryPolicy::default()
        };
        let mut rng = rng_from(seed);
        let d = p.backoff_ms(attempt, None, &mut rng);
        prop_assert!(
            d <= max_ms.max(1),
            "backoff {d} exceeds cap {max_ms} (base {base}, mult {mult}, attempt {attempt})"
        );
    }

    #[test]
    fn breaker_never_serves_while_open_before_cooldown(
        events in proptest::collection::vec((0u64..3_000, any::<bool>()), 1..200),
        min_samples in 1u32..6,
        cooldown_ms in 500u64..20_000,
    ) {
        let clock = Arc::new(VirtualClock::new());
        let breaker = CircuitBreaker::new(
            BreakerConfig {
                window_ms: 10_000,
                min_samples,
                failure_rate: 0.5,
                cooldown_ms,
                probe_count: 2,
            },
            Arc::clone(&clock),
        );
        for (advance, ok) in events {
            clock.advance_ms(advance);
            let now = clock.now_ms();
            let pre = breaker.snapshot();
            match breaker.try_acquire() {
                Ok(()) => {
                    // the only way an Open breaker serves is the cool-down
                    // having fully elapsed (it moves to HalfOpen)
                    if pre.state == BreakerState::Open {
                        prop_assert!(
                            now >= pre.opened_at_ms + cooldown_ms,
                            "served at {now} inside cool-down from {}",
                            pre.opened_at_ms
                        );
                    }
                    breaker.record(ok);
                }
                Err(remaining) => {
                    prop_assert_eq!(pre.state, BreakerState::Open);
                    prop_assert_eq!(remaining, pre.opened_at_ms + cooldown_ms - now);
                }
            }
        }
    }

    #[test]
    fn breaker_recloses_after_cooldown_and_probe_successes(
        min_samples in 1u32..8,
        probe_count in 1u32..5,
        cooldown_ms in 1u64..10_000,
    ) {
        let clock = Arc::new(VirtualClock::new());
        let breaker = CircuitBreaker::new(
            BreakerConfig {
                window_ms: 60_000,
                min_samples,
                failure_rate: 0.5,
                cooldown_ms,
                probe_count,
            },
            Arc::clone(&clock),
        );
        for _ in 0..min_samples {
            prop_assert!(breaker.try_acquire().is_ok(), "closed breaker serves");
            breaker.record(false);
        }
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        prop_assert!(breaker.try_acquire().is_err(), "no service before cool-down");
        clock.advance_ms(cooldown_ms);
        for probe in 0..probe_count {
            prop_assert!(breaker.try_acquire().is_ok(), "probe {probe} admitted");
            breaker.record(true);
        }
        prop_assert_eq!(breaker.state(), BreakerState::Closed);
        prop_assert!(breaker.try_acquire().is_ok(), "re-closed breaker serves");
    }
}
