//! Property-based tests for geography: coordinates, networks, sampling.

use nbhd_geo::{County, GeoBounds, LatLon, SurveySample, Zoning, SEGMENT_INTERVAL_FEET};
use proptest::prelude::*;

fn arb_latlon() -> impl Strategy<Value = LatLon> {
    (33.0f64..37.0, -80.5f64..-77.5).prop_map(|(lat, lon)| LatLon::new(lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_is_symmetric_and_nonnegative(a in arb_latlon(), b in arb_latlon()) {
        let ab = a.distance_feet(b);
        let ba = b.distance_feet(a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6 * ab.max(1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint(a in arb_latlon(), b in arb_latlon(), t in 0.0f64..=1.0) {
        let p = a.lerp(b, t);
        let d_total = a.distance_feet(b);
        let d_a = a.distance_feet(p);
        // interpolation distance is proportional to t (within flat-earth error)
        prop_assert!((d_a - t * d_total).abs() < d_total * 0.02 + 1.0);
    }

    #[test]
    fn bearing_is_in_range(a in arb_latlon(), b in arb_latlon()) {
        let bearing = a.bearing_to(b);
        prop_assert!((0.0..360.0).contains(&bearing));
    }

    #[test]
    fn bounds_at_is_inside(fx in 0.0f64..=1.0, fy in 0.0f64..=1.0) {
        let bounds = GeoBounds::new(LatLon::new(34.0, -80.0), LatLon::new(36.0, -78.0));
        prop_assert!(bounds.contains(bounds.at(fx, fy)));
    }

    #[test]
    fn samples_have_expected_size_and_unique_ids(n in 1usize..150, seed in 0u64..30) {
        let sample = SurveySample::draw(&County::study_pair(), n, 1.0, seed).unwrap();
        prop_assert_eq!(sample.len(), n);
        let mut ids: Vec<u64> = sample.points().iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
        // zone fractions sum to 1
        let fracs = sample.zone_fractions();
        prop_assert!((fracs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_points_lie_on_segment_grid(seed in 0u64..20) {
        let counties = County::study_pair();
        let sample = SurveySample::draw(&counties, 30, 0.5, seed).unwrap();
        for p in sample.points() {
            // every point belongs to one of the two counties' bounds
            // (allow a hair of slack: winding rural roads can wander)
            let inside = counties.iter().any(|c| {
                let b = c.bounds();
                p.position.lat >= b.min.lat - 0.2
                    && p.position.lat <= b.max.lat + 0.2
                    && p.position.lon >= b.min.lon - 0.2
                    && p.position.lon <= b.max.lon + 0.2
            });
            prop_assert!(inside, "point {:?} far outside both counties", p.position);
            prop_assert!((0.0..360.0).contains(&p.road_bearing));
        }
        let _ = SEGMENT_INTERVAL_FEET;
    }

    #[test]
    fn networks_are_deterministic_per_seed(seed in 0u64..30, scale in 1usize..3) {
        let county = County::durham();
        let a = county.road_network(scale as f64, seed);
        let b = county.road_network(scale as f64, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zone_priors_are_valid_for_all_zones(idx in 0usize..3) {
        let z = Zoning::ALL[idx];
        prop_assert!(z.priors().is_valid());
    }
}
