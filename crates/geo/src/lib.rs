//! Synthetic geography for the neighborhood-environment study: counties
//! with urban/suburban/rural zoning mixes, procedurally generated road
//! networks, 50-ft roadway segmentation, and the random survey sampling the
//! paper performs over Robeson and Durham counties.
//!
//! This crate is the replacement for the study's proprietary geographic
//! inputs (see DESIGN.md §2): downstream crates only need survey points
//! with a position, road bearing, lane class, and zoning — all of which are
//! synthesized here deterministically from a seed.
//!
//! # Examples
//!
//! ```
//! use nbhd_geo::{County, SurveySample};
//!
//! let counties = County::study_pair();
//! let sample = SurveySample::draw(&counties, 50, 0.5, 42)?;
//! assert_eq!(sample.len(), 50);
//! # Ok::<(), nbhd_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coords;
mod county;
mod network;
mod region;
mod segment;
mod zone;

pub use coords::{GeoBounds, LatLon, FEET_PER_DEGREE_LAT};
pub use county::County;
pub use network::{RoadClass, RoadEdge, RoadNetwork};
pub use region::{Lighting, RegionSet, RegionSpec, ShardPlan, Weather};
pub use segment::{segment_network, SurveyPoint, SurveySample, SEGMENT_INTERVAL_FEET};
pub use zone::{ZonePriors, Zoning};
