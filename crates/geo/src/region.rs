//! The region registry and shard planning for streaming surveys.
//!
//! [`RegionSpec`] generalizes [`County`](crate::County) from the paper's
//! fixed Robeson/Durham pair to an open set of survey regions with a
//! parameterized zone mix, a per-region network-scale multiplier, and the
//! scenario axes related work shows matter (weather, lighting). A
//! [`RegionSet`] is the validated registry a survey draws from, and a
//! [`ShardPlan`] deterministically splits the drawn locations into shards
//! by stable hash so downstream stages can stream one shard at a time with
//! bounded resident memory.
//!
//! # Examples
//!
//! ```
//! use nbhd_geo::{RegionSet, ShardPlan, SurveySample};
//!
//! let regions = RegionSet::synthetic_grid(8, 5);
//! let sample = SurveySample::draw_regions(&regions, 64, 0.5, 5)?;
//! let plan = ShardPlan::new(4)?;
//! // every drawn location lands in exactly one shard
//! for p in sample.points() {
//!     assert!(plan.assign(p.id) < plan.shards());
//! }
//! # Ok::<(), nbhd_types::Error>(())
//! ```

use nbhd_types::rng::{child_seed, splitmix64};
use nbhd_types::LocationId;
use serde::{Deserialize, Serialize};

use crate::{County, GeoBounds, LatLon, RoadNetwork};

/// Sky/precipitation condition of a region's capture campaign.
///
/// A scenario axis hook: today it perturbs the region's synthesis seed (a
/// rainy capture of the same county is a *different deterministic world*);
/// the scene generator will consume it directly as the axis matures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Weather {
    /// Clear skies (the study's implicit default).
    #[default]
    Clear,
    /// Overcast, flat light.
    Overcast,
    /// Active rain, wet pavement.
    Rain,
    /// Ground fog, reduced visibility.
    Fog,
}

/// Time-of-day lighting of a region's capture campaign. Same hook
/// semantics as [`Weather`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Lighting {
    /// Full daylight (the study's implicit default).
    #[default]
    Day,
    /// Low-angle dusk light.
    Dusk,
    /// Night, artificial lighting only.
    Night,
}

impl Weather {
    /// All weather conditions, in axis order.
    pub const ALL: [Weather; 4] = [
        Weather::Clear,
        Weather::Overcast,
        Weather::Rain,
        Weather::Fog,
    ];
}

impl Lighting {
    /// All lighting conditions, in axis order.
    pub const ALL: [Lighting; 3] = [Lighting::Day, Lighting::Dusk, Lighting::Night];
}

/// One survey region: a named geographic extent with a zoning mix, a
/// network-scale multiplier, and scenario-axis settings.
///
/// For default axes and unit scale this is byte-compatible with
/// [`County`]: the same name, bounds, and mix synthesize the identical
/// road network and draw the identical sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    name: String,
    bounds: GeoBounds,
    /// Fractions of urban / suburban / rural tracts; sums to 1.
    zone_mix: [f64; 3],
    /// Per-region multiplier applied on top of the survey's base
    /// network scale (1.0 = the county default).
    #[serde(default = "default_scale")]
    scale: f64,
    /// Weather axis for this region's capture campaign.
    #[serde(default)]
    weather: Weather,
    /// Lighting axis for this region's capture campaign.
    #[serde(default)]
    lighting: Lighting,
}

fn default_scale() -> f64 {
    1.0
}

impl RegionSpec {
    /// Creates a region.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] when the zone mix does not sum
    /// to approximately 1, has negative entries, the name is empty, or the
    /// scale multiplier is not positive.
    pub fn new(
        name: impl Into<String>,
        bounds: GeoBounds,
        zone_mix: [f64; 3],
    ) -> nbhd_types::Result<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(nbhd_types::Error::config("region name must be non-empty"));
        }
        let sum: f64 = zone_mix.iter().sum();
        if zone_mix.iter().any(|&m| m < 0.0) || (sum - 1.0).abs() > 0.01 {
            return Err(nbhd_types::Error::config(format!(
                "zone mix must be non-negative and sum to 1, got {zone_mix:?}"
            )));
        }
        Ok(RegionSpec {
            name,
            bounds,
            zone_mix,
            scale: 1.0,
            weather: Weather::default(),
            lighting: Lighting::default(),
        })
    }

    /// Sets the per-region network-scale multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] for non-positive scales.
    pub fn with_scale(mut self, scale: f64) -> nbhd_types::Result<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(nbhd_types::Error::config(format!(
                "region scale must be positive, got {scale}"
            )));
        }
        self.scale = scale;
        Ok(self)
    }

    /// Sets the weather axis.
    #[must_use]
    pub fn with_weather(mut self, weather: Weather) -> Self {
        self.weather = weather;
        self
    }

    /// Sets the lighting axis.
    #[must_use]
    pub fn with_lighting(mut self, lighting: Lighting) -> Self {
        self.lighting = lighting;
        self
    }

    /// The region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region's geographic extent.
    pub fn bounds(&self) -> GeoBounds {
        self.bounds
    }

    /// The urban/suburban/rural tract mix.
    pub fn zone_mix(&self) -> [f64; 3] {
        self.zone_mix
    }

    /// The per-region network-scale multiplier.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The weather axis.
    pub fn weather(&self) -> Weather {
        self.weather
    }

    /// The lighting axis.
    pub fn lighting(&self) -> Lighting {
        self.lighting
    }

    /// The region's deterministic synthesis seed.
    ///
    /// Default axes reproduce [`County::road_network`]'s seed exactly
    /// (`child_seed(seed, name)`), so county-era samples stay
    /// byte-identical; any non-default axis forks a distinct world.
    pub fn region_seed(&self, seed: u64) -> u64 {
        let base = child_seed(seed, &self.name);
        if self.weather == Weather::Clear && self.lighting == Lighting::Day {
            return base;
        }
        let axis = ((self.weather as u64) << 8) | self.lighting as u64;
        splitmix64(child_seed(base, "axis") ^ axis)
    }

    /// Synthesizes this region's road network at `base_scale` times the
    /// region's own multiplier.
    pub fn road_network(&self, base_scale: f64, seed: u64) -> RoadNetwork {
        RoadNetwork::synthesize(
            self.bounds,
            self.zone_mix,
            base_scale * self.scale,
            self.region_seed(seed),
        )
    }
}

impl From<County> for RegionSpec {
    fn from(county: County) -> RegionSpec {
        RegionSpec {
            name: county.name().to_owned(),
            bounds: county.bounds(),
            zone_mix: county.zone_mix(),
            scale: 1.0,
            weather: Weather::default(),
            lighting: Lighting::default(),
        }
    }
}

/// A validated, ordered registry of survey regions.
///
/// Replaces the hardcoded `County::study_pair()` as the thing a survey is
/// drawn over: the paper's two-county study is just
/// [`RegionSet::study_pair`], and arbitrarily many regions compose the
/// same way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSet {
    regions: Vec<RegionSpec>,
}

impl RegionSet {
    /// Builds a registry from regions.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] when empty or when two regions
    /// share a name (names key per-region seeds; duplicates would alias
    /// random streams).
    pub fn new(regions: Vec<RegionSpec>) -> nbhd_types::Result<RegionSet> {
        if regions.is_empty() {
            return Err(nbhd_types::Error::config("region set must be non-empty"));
        }
        let mut names: Vec<&str> = regions.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != regions.len() {
            return Err(nbhd_types::Error::config("region names must be unique"));
        }
        Ok(RegionSet { regions })
    }

    /// The paper's two study counties as a region set, in paper order.
    pub fn study_pair() -> RegionSet {
        RegionSet {
            regions: County::study_pair().map(RegionSpec::from).to_vec(),
        }
    }

    /// `k` synthetic regions tiled over a deterministic lat/lon grid with
    /// zone mixes and scenario axes cycling through contrasting presets —
    /// the continental-scale stand-in used by the sharded-run tests and
    /// examples.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn synthetic_grid(k: usize, seed: u64) -> RegionSet {
        assert!(k > 0, "need at least one synthetic region");
        // contrasting mixes: urban-core, balanced, rural
        const MIXES: [[f64; 3]; 3] = [[0.55, 0.33, 0.12], [0.30, 0.40, 0.30], [0.08, 0.27, 0.65]];
        let regions = (0..k)
            .map(|i| {
                let row = (i / 4) as f64;
                let col = (i % 4) as f64;
                // jitter the tile origin deterministically per set seed so
                // different seeds give different geographies
                let j = (splitmix64(child_seed(seed, "grid") ^ i as u64) % 1000) as f64 / 10_000.0;
                let min = LatLon::new(33.5 + 0.65 * row + j, -80.5 + 0.75 * col + j);
                let max = LatLon::new(min.lat + 0.45, min.lon + 0.50);
                RegionSpec {
                    name: format!("synth-{i:02}"),
                    bounds: GeoBounds::new(min, max),
                    zone_mix: MIXES[i % MIXES.len()],
                    scale: 1.0,
                    weather: Weather::ALL[i % Weather::ALL.len()],
                    lighting: Lighting::ALL[i % Lighting::ALL.len()],
                }
            })
            .collect();
        RegionSet { regions }
    }

    /// The regions, in registry order.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` when the set holds no regions (never, for a
    /// validated set; kept for clippy symmetry with [`RegionSet::len`]).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The subset with the given names, in the order given.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::NotFound`] for unknown names.
    pub fn select(&self, names: &[&str]) -> nbhd_types::Result<RegionSet> {
        let regions: Vec<RegionSpec> = names
            .iter()
            .map(|&n| {
                self.regions
                    .iter()
                    .find(|r| r.name() == n)
                    .cloned()
                    .ok_or_else(|| nbhd_types::Error::not_found(format!("region {n}")))
            })
            .collect::<nbhd_types::Result<_>>()?;
        RegionSet::new(regions)
    }
}

impl Default for RegionSet {
    /// The paper's study pair — the backward-compatible survey default.
    fn default() -> RegionSet {
        RegionSet::study_pair()
    }
}

/// Salt mixed into the shard hash so shard assignment is independent of
/// every other consumer of location-id hashes.
const SHARD_SALT: u64 = 0x5ea4_ded_5ead_c0de;

/// A deterministic plan splitting survey locations into `n` shards by
/// stable hash of the location id.
///
/// The assignment depends only on `(location, n)` — not on sample order,
/// worker count, or which process asks — so any process can recompute its
/// shard's membership from the plan alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardPlan {
    shards: usize,
}

impl ShardPlan {
    /// A plan with `n` shards.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] when `n` is zero.
    pub fn new(n: usize) -> nbhd_types::Result<ShardPlan> {
        if n == 0 {
            return Err(nbhd_types::Error::config("shard plan needs >= 1 shard"));
        }
        Ok(ShardPlan { shards: n })
    }

    /// The single-shard (unsharded) plan.
    pub fn one() -> ShardPlan {
        ShardPlan { shards: 1 }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard (`0..shards`) a location belongs to: a stable hash of the
    /// location id reduced mod the shard count.
    pub fn assign(&self, location: LocationId) -> usize {
        (splitmix64(location.0 ^ SHARD_SALT) % self.shards as u64) as usize
    }
}

impl Default for ShardPlan {
    fn default() -> ShardPlan {
        ShardPlan::one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SurveySample;

    #[test]
    fn study_pair_regions_match_counties() {
        let set = RegionSet::study_pair();
        let counties = County::study_pair();
        for (region, county) in set.regions().iter().zip(&counties) {
            assert_eq!(region.name(), county.name());
            assert_eq!(region.zone_mix(), county.zone_mix());
            // default axes reproduce the county's synthesis seed exactly
            assert_eq!(
                region.region_seed(7),
                nbhd_types::rng::child_seed(7, county.name())
            );
        }
    }

    #[test]
    fn county_draw_equals_region_draw() {
        let counties = County::study_pair();
        let a = SurveySample::draw(&counties, 60, 0.5, 11).unwrap();
        let b = SurveySample::draw_regions(&RegionSet::study_pair(), 60, 0.5, 11).unwrap();
        assert_eq!(a, b, "region path must be byte-identical to county path");
    }

    #[test]
    fn axes_fork_distinct_worlds() {
        let base = RegionSpec::from(County::durham());
        let rainy = base.clone().with_weather(Weather::Rain);
        let night = base.clone().with_lighting(Lighting::Night);
        assert_ne!(base.region_seed(3), rainy.region_seed(3));
        assert_ne!(base.region_seed(3), night.region_seed(3));
        assert_ne!(rainy.region_seed(3), night.region_seed(3));
        // and the axis fork is deterministic
        assert_eq!(rainy.region_seed(3), rainy.clone().region_seed(3));
    }

    #[test]
    fn synthetic_grid_is_deterministic_and_diverse() {
        let a = RegionSet::synthetic_grid(8, 5);
        let b = RegionSet::synthetic_grid(8, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let c = RegionSet::synthetic_grid(8, 6);
        assert_ne!(a, c, "set seed must vary the geography");
        // mixes and axes cycle: at least two distinct mixes and weathers
        let mixes: std::collections::HashSet<_> = a
            .regions()
            .iter()
            .map(|r| format!("{:?}", r.zone_mix()))
            .collect();
        assert!(mixes.len() >= 2);
        let weathers: std::collections::HashSet<_> = a
            .regions()
            .iter()
            .map(|r| format!("{:?}", r.weather()))
            .collect();
        assert!(weathers.len() >= 2);
    }

    #[test]
    fn region_set_validates() {
        assert!(RegionSet::new(vec![]).is_err());
        let r = RegionSpec::from(County::robeson());
        assert!(
            RegionSet::new(vec![r.clone(), r]).is_err(),
            "duplicate names"
        );
        assert!(RegionSpec::new("", County::robeson().bounds(), [0.2, 0.3, 0.5]).is_err());
        assert!(RegionSpec::new("x", County::robeson().bounds(), [0.5, 0.5, 0.5]).is_err());
        let ok = RegionSpec::new("x", County::robeson().bounds(), [0.2, 0.3, 0.5]).unwrap();
        assert!(ok.with_scale(0.0).is_err());
    }

    #[test]
    fn select_picks_named_regions_in_order() {
        let set = RegionSet::synthetic_grid(4, 1);
        let picked = set.select(&["synth-02", "synth-00"]).unwrap();
        assert_eq!(picked.regions()[0].name(), "synth-02");
        assert_eq!(picked.regions()[1].name(), "synth-00");
        assert!(set.select(&["nope"]).is_err());
    }

    #[test]
    fn shard_plan_partitions_stably() {
        let plan = ShardPlan::new(4).unwrap();
        let mut counts = [0usize; 4];
        for loc in 0..4000u64 {
            let s = plan.assign(LocationId(loc));
            assert!(s < 4);
            assert_eq!(s, plan.assign(LocationId(loc)), "assignment is stable");
            counts[s] += 1;
        }
        // stable hash spreads locations roughly evenly
        for &c in &counts {
            assert!((800..=1200).contains(&c), "imbalanced shard: {counts:?}");
        }
        assert!(ShardPlan::new(0).is_err());
        assert_eq!(ShardPlan::one().assign(LocationId(9)), 0);
    }
}
