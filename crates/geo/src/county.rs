//! County definitions mirroring the study area.

use serde::{Deserialize, Serialize};

use crate::{GeoBounds, LatLon, RoadNetwork};

/// A county with its extent, zoning mix, and synthesized road network
/// parameters.
///
/// The study samples "two counties (e.g., Robeson and Durham counties),
/// covering both rural and urban settings in North Carolina"; the presets
/// [`County::robeson`] and [`County::durham`] model that contrast.
///
/// ```
/// use nbhd_geo::County;
/// let robeson = County::robeson();
/// assert_eq!(robeson.name(), "Robeson");
/// let net = robeson.road_network(1.0, 42);
/// assert!(!net.edges().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct County {
    name: String,
    bounds: GeoBounds,
    /// Fractions of urban / suburban / rural tracts; sums to 1.
    zone_mix: [f64; 3],
}

impl County {
    /// Creates a custom county.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] when the zone mix does not sum
    /// to approximately 1 or has negative entries.
    pub fn new(
        name: impl Into<String>,
        bounds: GeoBounds,
        zone_mix: [f64; 3],
    ) -> nbhd_types::Result<Self> {
        let sum: f64 = zone_mix.iter().sum();
        if zone_mix.iter().any(|&m| m < 0.0) || (sum - 1.0).abs() > 0.01 {
            return Err(nbhd_types::Error::config(format!(
                "zone mix must be non-negative and sum to 1, got {zone_mix:?}"
            )));
        }
        Ok(County {
            name: name.into(),
            bounds,
            zone_mix,
        })
    }

    /// Robeson County, NC: predominantly rural.
    pub fn robeson() -> County {
        County {
            name: "Robeson".to_owned(),
            bounds: GeoBounds::new(LatLon::new(34.30, -79.45), LatLon::new(34.85, -78.85)),
            zone_mix: [0.10, 0.28, 0.62],
        }
    }

    /// Durham County, NC: predominantly urban.
    pub fn durham() -> County {
        County {
            name: "Durham".to_owned(),
            bounds: GeoBounds::new(LatLon::new(35.85, -79.00), LatLon::new(36.24, -78.70)),
            zone_mix: [0.48, 0.38, 0.14],
        }
    }

    /// The two study counties in the order the paper lists them.
    pub fn study_pair() -> [County; 2] {
        [County::robeson(), County::durham()]
    }

    /// The county name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The county's geographic extent.
    pub fn bounds(&self) -> GeoBounds {
        self.bounds
    }

    /// The urban/suburban/rural tract mix.
    pub fn zone_mix(&self) -> [f64; 3] {
        self.zone_mix
    }

    /// Synthesizes this county's road network.
    ///
    /// `scale` trades fidelity for speed: 1.0 is the full-study size, small
    /// fractions are used by tests.
    pub fn road_network(&self, scale: f64, seed: u64) -> RoadNetwork {
        let county_seed = nbhd_types::rng::child_seed(seed, &self.name);
        RoadNetwork::synthesize(self.bounds, self.zone_mix, scale, county_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Zoning;

    #[test]
    fn presets_have_contrasting_mixes() {
        let r = County::robeson();
        let d = County::durham();
        assert!(r.zone_mix()[2] > d.zone_mix()[2], "Robeson is more rural");
        assert!(d.zone_mix()[0] > r.zone_mix()[0], "Durham is more urban");
    }

    #[test]
    fn invalid_mix_rejected() {
        let b = County::robeson().bounds();
        assert!(County::new("X", b, [0.5, 0.5, 0.5]).is_err());
        assert!(County::new("X", b, [-0.2, 0.6, 0.6]).is_err());
        assert!(County::new("X", b, [0.2, 0.3, 0.5]).is_ok());
    }

    #[test]
    fn networks_reflect_zone_mix() {
        let rural_net = County::robeson().road_network(2.0, 1);
        let urban_net = County::durham().road_network(2.0, 1);
        let rural_frac = |n: &crate::RoadNetwork| {
            n.edges().iter().filter(|e| e.zone == Zoning::Rural).count() as f64
                / n.edges().len() as f64
        };
        assert!(
            rural_frac(&rural_net) > rural_frac(&urban_net),
            "Robeson should have more rural edges"
        );
    }
}
