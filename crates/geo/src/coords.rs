//! Geographic coordinates and distances.

use serde::{Deserialize, Serialize};

/// Feet per degree of latitude (WGS-84 mean).
pub const FEET_PER_DEGREE_LAT: f64 = 364_000.0;

/// A WGS-84 latitude/longitude pair in degrees.
///
/// ```
/// use nbhd_geo::LatLon;
/// let a = LatLon::new(35.05, -79.01);
/// let b = LatLon::new(35.05, -79.01);
/// assert!(a.distance_feet(b) < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees north.
    pub lat: f64,
    /// Longitude in degrees east.
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate.
    pub const fn new(lat: f64, lon: f64) -> Self {
        LatLon { lat, lon }
    }

    /// Equirectangular-approximation distance in feet — accurate to well
    /// under 1% at county scales, which is all the sampler needs.
    pub fn distance_feet(self, other: LatLon) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dy = (other.lat - self.lat) * FEET_PER_DEGREE_LAT;
        let dx = (other.lon - self.lon) * FEET_PER_DEGREE_LAT * mean_lat.cos();
        (dx * dx + dy * dy).sqrt()
    }

    /// Initial bearing from `self` to `other` in degrees clockwise from
    /// north, in `[0, 360)`.
    pub fn bearing_to(self, other: LatLon) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dy = other.lat - self.lat;
        let dx = (other.lon - self.lon) * mean_lat.cos();
        let deg = dx.atan2(dy).to_degrees();
        (deg + 360.0) % 360.0
    }

    /// Linear interpolation along the segment `self -> other` at parameter
    /// `t` in `[0, 1]`.
    pub fn lerp(self, other: LatLon, t: f64) -> LatLon {
        LatLon::new(
            self.lat + (other.lat - self.lat) * t,
            self.lon + (other.lon - self.lon) * t,
        )
    }
}

/// A rectangular geographic extent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoBounds {
    /// Southwest corner.
    pub min: LatLon,
    /// Northeast corner.
    pub max: LatLon,
}

impl GeoBounds {
    /// Creates bounds from two corners.
    ///
    /// # Panics
    ///
    /// Panics when `min` is not southwest of `max`.
    pub fn new(min: LatLon, max: LatLon) -> Self {
        assert!(
            min.lat < max.lat && min.lon < max.lon,
            "min corner must be southwest of max corner"
        );
        GeoBounds { min, max }
    }

    /// Returns `true` when `p` lies inside the bounds.
    pub fn contains(&self, p: LatLon) -> bool {
        p.lat >= self.min.lat && p.lat <= self.max.lat && p.lon >= self.min.lon && p.lon <= self.max.lon
    }

    /// The coordinate at fractional position `(fx, fy)` within the bounds
    /// (`fx` east-west, `fy` south-north, both in `[0, 1]`).
    pub fn at(&self, fx: f64, fy: f64) -> LatLon {
        LatLon::new(
            self.min.lat + (self.max.lat - self.min.lat) * fy,
            self.min.lon + (self.max.lon - self.min.lon) * fx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_degree_of_latitude_is_364k_feet() {
        let a = LatLon::new(35.0, -79.0);
        let b = LatLon::new(36.0, -79.0);
        assert!((a.distance_feet(b) - FEET_PER_DEGREE_LAT).abs() < 1.0);
    }

    #[test]
    fn bearings_cardinal() {
        let o = LatLon::new(35.0, -79.0);
        assert!((o.bearing_to(LatLon::new(36.0, -79.0)) - 0.0).abs() < 0.5);
        assert!((o.bearing_to(LatLon::new(35.0, -78.0)) - 90.0).abs() < 0.5);
        assert!((o.bearing_to(LatLon::new(34.0, -79.0)) - 180.0).abs() < 0.5);
        assert!((o.bearing_to(LatLon::new(35.0, -80.0)) - 270.0).abs() < 0.5);
    }

    #[test]
    fn lerp_midpoint() {
        let a = LatLon::new(35.0, -79.0);
        let b = LatLon::new(36.0, -78.0);
        let m = a.lerp(b, 0.5);
        assert!((m.lat - 35.5).abs() < 1e-9 && (m.lon + 78.5).abs() < 1e-9);
    }

    #[test]
    fn bounds_contain_and_at() {
        let b = GeoBounds::new(LatLon::new(35.0, -80.0), LatLon::new(36.0, -79.0));
        assert!(b.contains(b.at(0.5, 0.5)));
        assert!(!b.contains(LatLon::new(34.0, -79.5)));
        assert_eq!(b.at(0.0, 0.0), b.min);
        assert_eq!(b.at(1.0, 1.0), b.max);
    }

    #[test]
    #[should_panic(expected = "southwest")]
    fn inverted_bounds_panic() {
        let _ = GeoBounds::new(LatLon::new(36.0, -79.0), LatLon::new(35.0, -80.0));
    }
}
