//! Zoning categories and their environmental-indicator priors.

use serde::{Deserialize, Serialize};

/// The development intensity of a neighborhood.
///
/// The study covers "both rural and urban settings" across two counties;
/// zoning is what drives which indicators a scene is likely to contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zoning {
    /// Dense, gridded development: sidewalks, streetlights, apartments.
    Urban,
    /// Residential subdivisions: some sidewalks, overhead utilities.
    Suburban,
    /// Sparse development: two-lane roads, powerlines, few sidewalks.
    Rural,
}

impl Zoning {
    /// All zoning categories.
    pub const ALL: [Zoning; 3] = [Zoning::Urban, Zoning::Suburban, Zoning::Rural];

    /// The prior probabilities of scene features for this zoning, used by
    /// the scene composer.
    pub const fn priors(self) -> ZonePriors {
        match self {
            Zoning::Urban => ZonePriors {
                streetlight: 0.40,
                sidewalk: 0.80,
                multilane: 0.85,
                powerline: 0.30,
                apartment: 0.32,
                building_density: 0.85,
                tree_density: 0.25,
                traffic_density: 0.55,
            },
            Zoning::Suburban => ZonePriors {
                streetlight: 0.21,
                sidewalk: 0.48,
                multilane: 0.68,
                powerline: 0.42,
                apartment: 0.11,
                building_density: 0.60,
                tree_density: 0.50,
                traffic_density: 0.30,
            },
            Zoning::Rural => ZonePriors {
                streetlight: 0.05,
                sidewalk: 0.05,
                multilane: 0.42,
                powerline: 0.38,
                apartment: 0.015,
                building_density: 0.20,
                tree_density: 0.80,
                traffic_density: 0.10,
            },
        }
    }
}

impl std::fmt::Display for Zoning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Zoning::Urban => "urban",
            Zoning::Suburban => "suburban",
            Zoning::Rural => "rural",
        };
        f.write_str(s)
    }
}

/// Scene-feature prior probabilities for a zoning category.
///
/// All fields are probabilities in `[0, 1]`. `multilane` is the probability
/// that a road in this zone has more than one lane per direction;
/// `building_density`, `tree_density`, and `traffic_density` scale how many
/// distractor objects the composer places.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZonePriors {
    /// P(streetlights installed along the segment).
    pub streetlight: f64,
    /// P(sidewalk present along the segment).
    pub sidewalk: f64,
    /// P(road is multilane | road present).
    pub multilane: f64,
    /// P(overhead powerline along the segment).
    pub powerline: f64,
    /// P(an apartment building on the segment).
    pub apartment: f64,
    /// Relative density of roadside buildings.
    pub building_density: f64,
    /// Relative density of roadside trees.
    pub tree_density: f64,
    /// Relative density of vehicles on the road.
    pub traffic_density: f64,
}

impl ZonePriors {
    /// Validates that every field is a probability.
    pub fn is_valid(&self) -> bool {
        [
            self.streetlight,
            self.sidewalk,
            self.multilane,
            self.powerline,
            self.apartment,
            self.building_density,
            self.tree_density,
            self.traffic_density,
        ]
        .iter()
        .all(|p| (0.0..=1.0).contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_priors_are_probabilities() {
        for z in Zoning::ALL {
            assert!(z.priors().is_valid(), "{z} priors out of range");
        }
    }

    #[test]
    fn urban_is_denser_than_rural() {
        let u = Zoning::Urban.priors();
        let r = Zoning::Rural.priors();
        assert!(u.sidewalk > r.sidewalk);
        assert!(u.streetlight > r.streetlight);
        assert!(u.apartment > r.apartment);
        assert!(u.multilane > r.multilane);
        assert!(r.tree_density > u.tree_density);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Zoning::Urban.to_string(), "urban");
        assert_eq!(Zoning::Rural.to_string(), "rural");
    }
}
