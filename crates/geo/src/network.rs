//! Synthetic county road networks.
//!
//! The study segments "all roadways with an interval of 50 feet across two
//! counties". We synthesize a road network per county: gridded streets in
//! urban tracts, winding connector roads in rural tracts, each edge carrying
//! its zoning and lane count.

use nbhd_types::rng::{child_seed, rng_from};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{GeoBounds, LatLon, Zoning};

/// Lanes per direction of a road edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// One lane per direction.
    SingleLane,
    /// More than one lane per direction.
    Multilane,
}

impl RoadClass {
    /// Lanes per direction (single = 1, multilane = 2).
    pub const fn lanes_per_direction(self) -> u8 {
        match self {
            RoadClass::SingleLane => 1,
            RoadClass::Multilane => 2,
        }
    }
}

/// One road edge: a polyline with zoning and lane count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadEdge {
    /// Polyline vertices from start to end.
    pub path: Vec<LatLon>,
    /// Lane configuration.
    pub class: RoadClass,
    /// Zoning of the neighborhood the edge runs through.
    pub zone: Zoning,
}

impl RoadEdge {
    /// Total length of the polyline in feet.
    pub fn length_feet(&self) -> f64 {
        self.path
            .windows(2)
            .map(|w| w[0].distance_feet(w[1]))
            .sum()
    }

    /// The point and local bearing at `dist` feet along the polyline.
    ///
    /// Returns `None` when `dist` exceeds the edge length.
    pub fn point_at(&self, dist: f64) -> Option<(LatLon, f64)> {
        if dist < 0.0 {
            return None;
        }
        let mut remaining = dist;
        for w in self.path.windows(2) {
            let seg = w[0].distance_feet(w[1]);
            if remaining <= seg && seg > 0.0 {
                let t = remaining / seg;
                return Some((w[0].lerp(w[1], t), w[0].bearing_to(w[1])));
            }
            remaining -= seg;
        }
        None
    }
}

/// A county's synthesized road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    edges: Vec<RoadEdge>,
}

impl RoadNetwork {
    /// The edges of the network.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Total road length in feet.
    pub fn total_length_feet(&self) -> f64 {
        self.edges.iter().map(RoadEdge::length_feet).sum()
    }

    /// Synthesizes a network inside `bounds`.
    ///
    /// `zone_mix` gives the fraction of tracts that are urban / suburban /
    /// rural (must sum to ~1). `scale` controls how many edges are
    /// generated; 1.0 yields on the order of 120 edges.
    pub fn synthesize(bounds: GeoBounds, zone_mix: [f64; 3], scale: f64, seed: u64) -> Self {
        let mut rng = rng_from(child_seed(seed, "road-network"));
        let mut edges = Vec::new();
        let n_tracts = ((12.0 * scale).round() as usize).max(1);
        for t in 0..n_tracts {
            // Assign each tract a zone according to the mix, round-robin
            // deterministic so small networks still hit every zone.
            let zone = pick_zone(&mut rng, zone_mix);
            let fx = (t % 4) as f64 / 4.0 + rng.random_range(0.0..0.12);
            let fy = (t / 4) as f64 / ((n_tracts / 4).max(1)) as f64 + rng.random_range(0.0..0.12);
            let origin = bounds.at(fx.min(0.92), fy.min(0.92));
            match zone {
                Zoning::Urban | Zoning::Suburban => {
                    grid_tract(&mut rng, &mut edges, origin, zone);
                }
                Zoning::Rural => {
                    winding_tract(&mut rng, &mut edges, origin, zone);
                }
            }
        }
        RoadNetwork { edges }
    }
}

fn pick_zone<R: Rng + ?Sized>(rng: &mut R, mix: [f64; 3]) -> Zoning {
    let total: f64 = mix.iter().sum();
    let mut u: f64 = rng.random_range(0.0..total.max(1e-9));
    for (i, m) in mix.iter().enumerate() {
        if u < *m {
            return Zoning::ALL[i];
        }
        u -= m;
    }
    Zoning::Rural
}

/// Grid streets: a small Manhattan block pattern, ~500 ft blocks.
fn grid_tract<R: Rng + ?Sized>(rng: &mut R, edges: &mut Vec<RoadEdge>, origin: LatLon, zone: Zoning) {
    let block_deg = 500.0 / crate::FEET_PER_DEGREE_LAT;
    let cells = 3usize;
    let priors = zone.priors();
    for i in 0..=cells {
        // east-west street
        let lat = origin.lat + i as f64 * block_deg;
        edges.push(RoadEdge {
            path: vec![
                LatLon::new(lat, origin.lon),
                LatLon::new(lat, origin.lon + cells as f64 * block_deg * 1.3),
            ],
            class: road_class(rng, priors.multilane),
            zone,
        });
        // north-south street
        let lon = origin.lon + i as f64 * block_deg * 1.3;
        edges.push(RoadEdge {
            path: vec![
                LatLon::new(origin.lat, lon),
                LatLon::new(origin.lat + cells as f64 * block_deg, lon),
            ],
            class: road_class(rng, priors.multilane),
            zone,
        });
    }
}

/// A winding rural connector: a polyline with gentle random heading drift.
fn winding_tract<R: Rng + ?Sized>(rng: &mut R, edges: &mut Vec<RoadEdge>, origin: LatLon, zone: Zoning) {
    let priors = zone.priors();
    let step_deg = 800.0 / crate::FEET_PER_DEGREE_LAT;
    let mut heading: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let mut p = origin;
    let mut path = vec![p];
    for _ in 0..rng.random_range(4..9) {
        heading += rng.random_range(-0.5..0.5);
        p = LatLon::new(p.lat + step_deg * heading.cos(), p.lon + step_deg * heading.sin());
        path.push(p);
    }
    edges.push(RoadEdge {
        path,
        class: road_class(rng, priors.multilane),
        zone,
    });
}

fn road_class<R: Rng + ?Sized>(rng: &mut R, p_multilane: f64) -> RoadClass {
    if rng.random_bool(p_multilane) {
        RoadClass::Multilane
    } else {
        RoadClass::SingleLane
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> GeoBounds {
        GeoBounds::new(LatLon::new(35.0, -79.5), LatLon::new(35.5, -79.0))
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = RoadNetwork::synthesize(bounds(), [0.3, 0.3, 0.4], 1.0, 7);
        let b = RoadNetwork::synthesize(bounds(), [0.3, 0.3, 0.4], 1.0, 7);
        assert_eq!(a, b);
        let c = RoadNetwork::synthesize(bounds(), [0.3, 0.3, 0.4], 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn network_has_mixed_zones_and_classes() {
        let n = RoadNetwork::synthesize(bounds(), [0.34, 0.33, 0.33], 2.0, 3);
        assert!(n.edges().len() > 20);
        let zones: std::collections::HashSet<_> =
            n.edges().iter().map(|e| e.zone).collect();
        assert!(zones.len() >= 2, "want multiple zones, got {zones:?}");
        let has_single = n.edges().iter().any(|e| e.class == RoadClass::SingleLane);
        let has_multi = n.edges().iter().any(|e| e.class == RoadClass::Multilane);
        assert!(has_single && has_multi);
    }

    #[test]
    fn edge_point_at_walks_the_polyline() {
        let e = RoadEdge {
            path: vec![LatLon::new(35.0, -79.0), LatLon::new(35.01, -79.0)],
            class: RoadClass::SingleLane,
            zone: Zoning::Rural,
        };
        let len = e.length_feet();
        assert!((len - 3640.0).abs() < 5.0);
        let (mid, bearing) = e.point_at(len / 2.0).unwrap();
        assert!((mid.lat - 35.005).abs() < 1e-6);
        assert!(bearing.abs() < 0.5, "northbound, got {bearing}");
        assert!(e.point_at(len + 1.0).is_none());
        assert!(e.point_at(-1.0).is_none());
    }

    #[test]
    fn total_length_is_positive() {
        let n = RoadNetwork::synthesize(bounds(), [0.3, 0.3, 0.4], 1.0, 9);
        assert!(n.total_length_feet() > 10_000.0);
    }
}
