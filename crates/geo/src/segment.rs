//! Roadway segmentation into 50-ft survey points, and survey sampling.

use nbhd_types::rng::{child_seed, rng_from};
use nbhd_types::LocationId;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::{County, LatLon, RegionSet, RegionSpec, RoadClass, RoadNetwork, Zoning};

/// The paper's segmentation interval: one survey point every 50 feet.
pub const SEGMENT_INTERVAL_FEET: f64 = 50.0;

/// One survey point on a roadway: where a street-view capture is requested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyPoint {
    /// Stable identifier, unique within a survey.
    pub id: LocationId,
    /// Geographic position.
    pub position: LatLon,
    /// Local bearing of the roadway at this point, degrees from north.
    pub road_bearing: f64,
    /// Lane configuration of the roadway.
    pub road_class: RoadClass,
    /// Zoning of the surrounding tract.
    pub zone: Zoning,
    /// Which county the point belongs to.
    pub county: String,
}

/// Segments every edge of a network at [`SEGMENT_INTERVAL_FEET`].
///
/// Point ids are assigned sequentially starting from `first_id`.
pub fn segment_network(
    network: &RoadNetwork,
    county: &str,
    first_id: u64,
) -> Vec<SurveyPoint> {
    let mut points = Vec::new();
    let mut next = first_id;
    for edge in network.edges() {
        let len = edge.length_feet();
        let mut d = SEGMENT_INTERVAL_FEET / 2.0;
        while d < len {
            if let Some((pos, bearing)) = edge.point_at(d) {
                points.push(SurveyPoint {
                    id: LocationId(next),
                    position: pos,
                    road_bearing: bearing,
                    road_class: edge.class,
                    zone: edge.zone,
                    county: county.to_owned(),
                });
                next += 1;
            }
            d += SEGMENT_INTERVAL_FEET;
        }
    }
    points
}

/// A full survey sample: the randomly selected subset of survey points that
/// get imaged, mirroring the paper's 1,200 randomly selected locations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveySample {
    points: Vec<SurveyPoint>,
}

impl SurveySample {
    /// Draws `n` locations across the given counties, split evenly between
    /// them, with `scale` controlling road-network fidelity.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] when `n` is zero or no counties
    /// are given.
    pub fn draw(
        counties: &[County],
        n: usize,
        scale: f64,
        seed: u64,
    ) -> nbhd_types::Result<SurveySample> {
        if counties.is_empty() {
            return Err(nbhd_types::Error::config("at least one county required"));
        }
        let regions: Vec<RegionSpec> = counties.iter().cloned().map(RegionSpec::from).collect();
        draw_over(&regions, n, scale, seed)
    }

    /// Draws `n` locations across the regions of a [`RegionSet`], split
    /// evenly between them, with `base_scale` multiplied by each region's
    /// own scale to control road-network fidelity.
    ///
    /// For a study-pair set this is byte-identical to
    /// [`SurveySample::draw`] over `County::study_pair()` — the county path
    /// is now a thin wrapper over this one.
    ///
    /// # Errors
    ///
    /// Returns [`nbhd_types::Error::Config`] when `n` is zero or a region
    /// cannot supply its share of points at this scale.
    pub fn draw_regions(
        regions: &RegionSet,
        n: usize,
        base_scale: f64,
        seed: u64,
    ) -> nbhd_types::Result<SurveySample> {
        draw_over(regions.regions(), n, base_scale, seed)
    }

    /// The sampled points.
    pub fn points(&self) -> &[SurveyPoint] {
        &self.points
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no points were sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points of this sample that a [`crate::ShardPlan`] assigns to
    /// shard `shard`, cloned into a shard-sized buffer (never the whole
    /// sample).
    pub fn shard_points(&self, plan: &crate::ShardPlan, shard: usize) -> Vec<SurveyPoint> {
        self.points
            .iter()
            .filter(|p| plan.assign(p.id) == shard)
            .cloned()
            .collect()
    }

    /// Fraction of points in each zoning category, ordered urban/suburban/rural.
    pub fn zone_fractions(&self) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for p in &self.points {
            let idx = Zoning::ALL.iter().position(|z| *z == p.zone).expect("known zone");
            counts[idx] += 1;
        }
        counts.map(|c| c as f64 / self.points.len().max(1) as f64)
    }
}

/// The shared sampling loop both draw paths funnel through: per region,
/// synthesize the network, segment it, and take a zone-stratified random
/// subset keyed by the region's own seed.
fn draw_over(
    regions: &[RegionSpec],
    n: usize,
    base_scale: f64,
    seed: u64,
) -> nbhd_types::Result<SurveySample> {
    if n == 0 {
        return Err(nbhd_types::Error::config("sample size must be positive"));
    }
    if regions.is_empty() {
        return Err(nbhd_types::Error::config("at least one region required"));
    }
    let per_region = n / regions.len();
    let mut remainder = n % regions.len();
    let mut points = Vec::with_capacity(n);
    let mut first_id = 0u64;
    for region in regions {
        let network = region.road_network(base_scale, seed);
        let candidates = segment_network(&network, region.name(), first_id);
        first_id += candidates.len() as u64 + 1_000_000;
        let mut rng = rng_from(region.region_seed(seed));
        let take = per_region + usize::from(remainder > 0);
        remainder = remainder.saturating_sub(1);
        if candidates.len() < take {
            return Err(nbhd_types::Error::config(format!(
                "region {} has only {} candidate points, need {take}; increase scale",
                region.name(),
                candidates.len()
            )));
        }
        // Stratify by zone so the sample reflects the region's zoning
        // mix rather than raw segment counts (grid tracts have ~3x the
        // segment density of winding rural roads).
        let mut by_zone: [Vec<SurveyPoint>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for p in candidates {
            let idx = Zoning::ALL.iter().position(|z| *z == p.zone).expect("known zone");
            by_zone[idx].push(p);
        }
        for bucket in &mut by_zone {
            bucket.shuffle(&mut rng);
        }
        let mix = region.zone_mix();
        let mut taken = 0usize;
        for (idx, bucket) in by_zone.iter_mut().enumerate() {
            let want = ((take as f64) * mix[idx]).round() as usize;
            let got = want.min(bucket.len());
            points.extend(bucket.drain(..got));
            taken += got;
        }
        // top up any shortfall from whichever zones have spare points
        let mut leftovers: Vec<SurveyPoint> =
            by_zone.into_iter().flatten().collect();
        leftovers.shuffle(&mut rng);
        while taken < take {
            match leftovers.pop() {
                Some(p) => {
                    points.push(p);
                    taken += 1;
                }
                None => {
                    return Err(nbhd_types::Error::config(format!(
                        "region {} ran out of candidate points",
                        region.name()
                    )))
                }
            }
        }
        points.truncate(points.len() - taken + take);
    }
    Ok(SurveySample { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_spacing_is_50_feet() {
        let county = County::durham();
        let network = county.road_network(0.5, 3);
        let points = segment_network(&network, county.name(), 0);
        assert!(points.len() > 100);
        // consecutive points on the same straight edge are 50 ft apart
        let d01 = points[0].position.distance_feet(points[1].position);
        assert!((d01 - SEGMENT_INTERVAL_FEET).abs() < 1.0, "spacing {d01}");
    }

    #[test]
    fn ids_are_unique() {
        let sample = SurveySample::draw(&County::study_pair(), 200, 0.5, 11).unwrap();
        let mut ids: Vec<u64> = sample.points().iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sample.len());
    }

    #[test]
    fn draw_is_deterministic_and_split_evenly() {
        let counties = County::study_pair();
        let a = SurveySample::draw(&counties, 100, 0.5, 9).unwrap();
        let b = SurveySample::draw(&counties, 100, 0.5, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let robeson = a.points().iter().filter(|p| p.county == "Robeson").count();
        assert_eq!(robeson, 50);
    }

    #[test]
    fn draw_matches_county_zone_mix() {
        let counties = County::study_pair();
        let sample = SurveySample::draw(&counties, 600, 1.0, 3).unwrap();
        let [urban, suburban, rural] = sample.zone_fractions();
        // expected mix = mean of the two county mixes
        let expect = [
            (counties[0].zone_mix()[0] + counties[1].zone_mix()[0]) / 2.0,
            (counties[0].zone_mix()[1] + counties[1].zone_mix()[1]) / 2.0,
            (counties[0].zone_mix()[2] + counties[1].zone_mix()[2]) / 2.0,
        ];
        assert!((urban - expect[0]).abs() < 0.08, "urban {urban} vs {}", expect[0]);
        assert!((suburban - expect[1]).abs() < 0.08, "suburban {suburban} vs {}", expect[1]);
        assert!((rural - expect[2]).abs() < 0.08, "rural {rural} vs {}", expect[2]);
    }

    #[test]
    fn draw_covers_rural_and_urban() {
        let sample = SurveySample::draw(&County::study_pair(), 400, 1.0, 5).unwrap();
        let [urban, _, rural] = sample.zone_fractions();
        assert!(urban > 0.05, "urban fraction {urban}");
        assert!(rural > 0.10, "rural fraction {rural}");
    }

    #[test]
    fn shard_points_partition_the_sample() {
        let sample = SurveySample::draw(&County::study_pair(), 120, 0.5, 7).unwrap();
        let plan = crate::ShardPlan::new(3).unwrap();
        let mut total = 0;
        for shard in 0..3 {
            let pts = sample.shard_points(&plan, shard);
            assert!(pts.iter().all(|p| plan.assign(p.id) == shard));
            total += pts.len();
        }
        assert_eq!(total, sample.len());
    }

    #[test]
    fn draw_validates_inputs() {
        assert!(SurveySample::draw(&County::study_pair(), 0, 1.0, 1).is_err());
        assert!(SurveySample::draw(&[], 10, 1.0, 1).is_err());
        // asking for far more points than a tiny network has fails loudly
        assert!(SurveySample::draw(&County::study_pair(), 1_000_000, 0.1, 1).is_err());
    }
}
