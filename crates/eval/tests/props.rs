//! Property-based tests for metrics, voting, and average precision.

use nbhd_eval::{
    average_precision, majority_vote, BinaryConfusion, PresenceEvaluator, TiePolicy,
};
use nbhd_types::{Indicator, IndicatorSet};
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = IndicatorSet> {
    (0u8..64).prop_map(IndicatorSet::from_bits)
}

proptest! {
    #[test]
    fn confusion_rates_are_probabilities(tp in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000, fn_ in 0u64..1000) {
        let c = BinaryConfusion { tp, fp, tn, fn_ };
        for rate in [c.precision(), c.recall(), c.specificity(), c.f1(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        }
    }

    #[test]
    fn f1_is_between_min_and_max_of_p_and_r(tp in 1u64..1000, fp in 0u64..1000, fn_ in 0u64..1000) {
        let c = BinaryConfusion { tp, fp, tn: 0, fn_ };
        let (p, r) = (c.precision(), c.recall());
        prop_assert!(c.f1() <= p.max(r) + 1e-12);
        prop_assert!(c.f1() >= p.min(r) - 1e-12);
    }

    #[test]
    fn perfect_predictions_score_one(truths in proptest::collection::vec(arb_set(), 1..50)) {
        let mut e = PresenceEvaluator::new();
        for t in &truths {
            e.observe(*t, *t);
        }
        prop_assert!((e.table().average.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unanimous_vote_is_identity(s in arb_set(), n in 1usize..9) {
        let votes = vec![s; n];
        prop_assert_eq!(majority_vote(&votes, TiePolicy::No), s);
        prop_assert_eq!(majority_vote(&votes, TiePolicy::Yes), s);
    }

    #[test]
    fn vote_is_permutation_invariant(votes in proptest::collection::vec(arb_set(), 1..7), seed in 0u64..100) {
        let voted = majority_vote(&votes, TiePolicy::No);
        let mut shuffled = votes.clone();
        // deterministic pseudo-shuffle
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % n;
            shuffled.swap(i, j);
        }
        prop_assert_eq!(majority_vote(&shuffled, TiePolicy::No), voted);
    }

    #[test]
    fn vote_respects_supermajorities(s in arb_set(), other in arb_set(), n in 2usize..5) {
        // n copies of s vs a single dissenter: s wins every indicator
        let mut votes = vec![s; n];
        votes.push(other);
        let voted = majority_vote(&votes, TiePolicy::No);
        if n > 1 {
            prop_assert_eq!(voted, s);
        }
    }

    #[test]
    fn ap_is_bounded(preds in proptest::collection::vec((0.0f32..1.0, any::<bool>()), 0..60), extra_pos in 0usize..10) {
        let tp = preds.iter().filter(|(_, c)| *c).count();
        let positives = tp + extra_pos;
        let ap = average_precision(&preds, positives);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ap), "ap {ap}");
    }

    #[test]
    fn ap_perfect_ranking_dominates_any_other(scores in proptest::collection::vec(0.0f32..1.0, 2..30)) {
        // half the predictions correct; perfect ranking puts them on top
        let n = scores.len();
        let half = n / 2;
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let perfect: Vec<(f32, bool)> = sorted
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i < half))
            .collect();
        let inverted: Vec<(f32, bool)> = sorted
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i >= n - half))
            .collect();
        if half > 0 {
            let ap_perfect = average_precision(&perfect, half);
            let ap_inverted = average_precision(&inverted, half);
            prop_assert!(ap_perfect >= ap_inverted - 1e-9);
        }
    }

    #[test]
    fn evaluator_merge_equals_joint_observation(
        pairs_a in proptest::collection::vec((arb_set(), arb_set()), 0..20),
        pairs_b in proptest::collection::vec((arb_set(), arb_set()), 0..20),
    ) {
        let mut separate_a = PresenceEvaluator::new();
        for (t, p) in &pairs_a {
            separate_a.observe(*t, *p);
        }
        let mut separate_b = PresenceEvaluator::new();
        for (t, p) in &pairs_b {
            separate_b.observe(*t, *p);
        }
        separate_a.merge(&separate_b);

        let mut joint = PresenceEvaluator::new();
        for (t, p) in pairs_a.iter().chain(&pairs_b) {
            joint.observe(*t, *p);
        }
        prop_assert_eq!(separate_a.confusions(), joint.confusions());
        for ind in Indicator::ALL {
            prop_assert_eq!(separate_a.confusions()[ind].total(), joint.confusions()[ind].total());
        }
    }
}
