//! Minimal ASCII charts for rendering the paper's figures in terminal
//! reports: horizontal bars for categorical comparisons (Figs. 2, 4, 5, 6)
//! and a line for the SNR sweep (Fig. 3).

/// Renders labeled values as a horizontal bar chart.
///
/// Values are scaled so the largest bar spans `width` cells; every bar gets
/// at least one cell when its value is positive.
///
/// ```
/// use nbhd_eval::bar_chart;
/// let chart = bar_chart(&[("English", 0.897), ("Chinese", 0.69)], 20);
/// assert!(chart.contains("English"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    let width = width.max(1);
    let max = rows
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let cells = ((value.abs() / max) * width as f64).round() as usize;
        let cells = if *value > 0.0 { cells.max(1) } else { cells };
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.3}\n",
            "#".repeat(cells)
        ));
    }
    out
}

/// Renders an `(x, y)` series as a fixed-height ASCII line chart with the
/// y-range annotated, x ascending left to right.
///
/// ```
/// use nbhd_eval::line_chart;
/// let chart = line_chart(&[(5.0, 0.2), (15.0, 0.5), (30.0, 0.9)], 4, 24);
/// assert!(chart.contains("0.900"));
/// assert!(chart.contains("0.200"));
/// ```
pub fn line_chart(points: &[(f64, f64)], height: usize, width: usize) -> String {
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let height = height.max(2);
    let width = width.max(points.len());
    let (x_min, x_max) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (x, _)| {
            (lo.min(*x), hi.max(*x))
        });
    let (y_min, y_max) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (_, y)| {
            (lo.min(*y), hi.max(*y))
        });
    let x_span = (x_max - x_min).max(1e-9);
    let y_span = (y_max - y_min).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (x, y) in points {
        let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:.3}")
        } else if i == height - 1 {
            format!("{y_min:.3}")
        } else {
            String::new()
        };
        out.push_str(&format!("{label:>8} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>8}  {:<w$.1}{:>r$.1}\n",
        "",
        "-".repeat(width),
        "",
        x_min,
        x_max,
        w = width / 2,
        r = width - width / 2,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let chart = bar_chart(&[("a", 1.0), ("b", 0.5)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[0]), 10);
        assert_eq!(count(lines[1]), 5);
    }

    #[test]
    fn tiny_positive_values_still_show() {
        let chart = bar_chart(&[("big", 1.0), ("small", 0.001)], 20);
        assert!(chart.lines().nth(1).unwrap().contains('#'));
    }

    #[test]
    fn zero_values_show_no_bar() {
        let chart = bar_chart(&[("a", 1.0), ("z", 0.0)], 10);
        assert_eq!(chart.lines().nth(1).unwrap().matches('#').count(), 0);
    }

    #[test]
    fn labels_are_aligned() {
        let chart = bar_chart(&[("ab", 1.0), ("abcdef", 0.7)], 8);
        let pipes: Vec<usize> = chart.lines().map(|l| l.find('|').unwrap()).collect();
        assert_eq!(pipes[0], pipes[1]);
    }

    #[test]
    fn line_chart_places_extremes() {
        let chart = line_chart(&[(0.0, 0.0), (1.0, 1.0)], 5, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains('*'), "max row has a point: {chart}");
        assert!(lines[4].contains('*'), "min row has a point: {chart}");
    }

    #[test]
    fn line_chart_handles_flat_series() {
        let chart = line_chart(&[(1.0, 0.5), (2.0, 0.5), (3.0, 0.5)], 4, 12);
        assert!(chart.contains('*'));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert_eq!(line_chart(&[], 4, 10), "(no data)\n");
    }
}
