//! Text rendering of metric tables and paper-vs-measured comparisons.

use nbhd_types::Indicator;

use crate::MetricsTable;

/// Renders a per-class metrics table in the paper's row order, with a final
/// `Average` row — the same layout as Tables I and III–VI.
///
/// ```
/// use nbhd_eval::{render_metrics_table, PresenceEvaluator};
/// use nbhd_types::{Indicator, IndicatorSet};
///
/// let mut e = PresenceEvaluator::new();
/// let s = IndicatorSet::new().with(Indicator::Sidewalk);
/// e.observe(s, s);
/// let text = render_metrics_table("Demo", &e.table());
/// assert!(text.contains("Sidewalk"));
/// assert!(text.contains("Average"));
/// ```
pub fn render_metrics_table(title: &str, table: &MetricsTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}\n",
        "Label", "Precision", "Recall", "F1", "Accuracy"
    ));
    for ind in Indicator::ALL {
        let m = table.per_class[ind];
        out.push_str(&format!(
            "{:<18} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            ind.name(),
            m.precision,
            m.recall,
            m.f1,
            m.accuracy
        ));
    }
    let a = table.average;
    out.push_str(&format!(
        "{:<18} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
        "Average", a.precision, a.recall, a.f1, a.accuracy
    ));
    out
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// What the row measures (e.g. `"Gemini avg recall"`).
    pub name: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measured.
    pub measured: f64,
}

impl ComparisonRow {
    /// Creates a row.
    pub fn new(name: impl Into<String>, paper: f64, measured: f64) -> Self {
        ComparisonRow {
            name: name.into(),
            paper,
            measured,
        }
    }

    /// Absolute deviation from the paper's value.
    pub fn delta(&self) -> f64 {
        (self.measured - self.paper).abs()
    }
}

/// Renders a paper-vs-measured table used by the experiment harness and
/// EXPERIMENTS.md.
pub fn render_comparison(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<34} {:>8} {:>9} {:>7}\n",
        "Quantity", "Paper", "Measured", "Delta"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>8.3} {:>9.3} {:>7.3}\n",
            r.name,
            r.paper,
            r.measured,
            r.delta()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassMetrics;
    use nbhd_types::IndicatorMap;

    #[test]
    fn table_lists_classes_in_paper_order() {
        let t = MetricsTable::from_per_class(IndicatorMap::fill(ClassMetrics::default()));
        let text = render_metrics_table("T", &t);
        let sl = text.find("Streetlight").unwrap();
        let sw = text.find("Sidewalk").unwrap();
        let ap = text.find("Apartment").unwrap();
        assert!(sl < sw && sw < ap);
    }

    #[test]
    fn comparison_rows_show_delta() {
        let rows = vec![ComparisonRow::new("avg accuracy", 0.885, 0.87)];
        let text = render_comparison("F5", &rows);
        assert!(text.contains("0.885"));
        assert!(text.contains("0.015"));
        assert!((rows[0].delta() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn rows_align_in_columns() {
        let t = MetricsTable::from_per_class(IndicatorMap::fill(ClassMetrics {
            precision: 0.5,
            recall: 0.5,
            f1: 0.5,
            accuracy: 0.5,
        }));
        let text = render_metrics_table("T", &t);
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{text}");
    }
}
