//! Text rendering of metric tables and paper-vs-measured comparisons.

use nbhd_obs::{BudgetReport, Histogram, RunDiff, RunSummary};
use nbhd_types::Indicator;

use crate::MetricsTable;

/// Renders a per-class metrics table in the paper's row order, with a final
/// `Average` row — the same layout as Tables I and III–VI.
///
/// ```
/// use nbhd_eval::{render_metrics_table, PresenceEvaluator};
/// use nbhd_types::{Indicator, IndicatorSet};
///
/// let mut e = PresenceEvaluator::new();
/// let s = IndicatorSet::new().with(Indicator::Sidewalk);
/// e.observe(s, s);
/// let text = render_metrics_table("Demo", &e.table());
/// assert!(text.contains("Sidewalk"));
/// assert!(text.contains("Average"));
/// ```
pub fn render_metrics_table(title: &str, table: &MetricsTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}\n",
        "Label", "Precision", "Recall", "F1", "Accuracy"
    ));
    for ind in Indicator::ALL {
        let m = table.per_class[ind];
        out.push_str(&format!(
            "{:<18} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            ind.name(),
            m.precision,
            m.recall,
            m.f1,
            m.accuracy
        ));
    }
    let a = table.average;
    out.push_str(&format!(
        "{:<18} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
        "Average", a.precision, a.recall, a.f1, a.accuracy
    ));
    out
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// What the row measures (e.g. `"Gemini avg recall"`).
    pub name: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measured.
    pub measured: f64,
}

impl ComparisonRow {
    /// Creates a row.
    pub fn new(name: impl Into<String>, paper: f64, measured: f64) -> Self {
        ComparisonRow {
            name: name.into(),
            paper,
            measured,
        }
    }

    /// Absolute deviation from the paper's value.
    pub fn delta(&self) -> f64 {
        (self.measured - self.paper).abs()
    }
}

/// Renders a paper-vs-measured table used by the experiment harness and
/// EXPERIMENTS.md.
pub fn render_comparison(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<34} {:>8} {:>9} {:>7}\n",
        "Quantity", "Paper", "Measured", "Delta"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>8.3} {:>9.3} {:>7.3}\n",
            r.name,
            r.paper,
            r.measured,
            r.delta()
        ));
    }
    out
}

/// One cross-region generalization row for [`render_transfer_table`]: a
/// detector trained on one region set, evaluated on (possibly another)
/// region's held-out test split.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRow {
    /// The region set the detector was trained on.
    pub train_region: String,
    /// The region set the detector was evaluated on.
    pub eval_region: String,
    /// Detection mAP50 on the evaluation region's test split.
    pub map50: f64,
    /// Average presence-level F1 at the calibrated thresholds.
    pub f1: f64,
    /// Number of test images evaluated.
    pub images: usize,
    /// Location-coverage fraction of the evaluated survey (`1.0` for a
    /// full run; below for supervised partial runs).
    pub coverage: f64,
}

impl TransferRow {
    /// Whether the row measures in-domain performance (train == eval region).
    pub fn in_domain(&self) -> bool {
        self.train_region == self.eval_region
    }
}

/// Renders cross-region transfer rows as an aligned text table, in the same
/// report style as [`render_metrics_table`].
///
/// ```
/// use nbhd_eval::{render_transfer_table, TransferRow};
///
/// let rows = vec![TransferRow {
///     train_region: "hidalgo+dallas".into(),
///     eval_region: "grid-0".into(),
///     map50: 0.41,
///     f1: 0.62,
///     images: 12,
///     coverage: 1.0,
/// }];
/// let text = render_transfer_table("Cross-region transfer", &rows);
/// assert!(text.contains("hidalgo+dallas"));
/// assert!(text.contains("transfer"));
/// ```
pub fn render_transfer_table(title: &str, rows: &[TransferRow]) -> String {
    let train_w = rows
        .iter()
        .map(|r| r.train_region.len())
        .chain(["Trained on".len()])
        .max()
        .unwrap_or(10);
    let eval_w = rows
        .iter()
        .map(|r| r.eval_region.len())
        .chain(["Tested on".len()])
        .max()
        .unwrap_or(9);
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<train_w$} {:<eval_w$} {:>9} {:>7} {:>7} {:>7} {:>6}\n",
        "Trained on", "Tested on", "Kind", "mAP50", "F1", "Images", "Cov"
    ));
    for r in rows {
        let kind = if r.in_domain() { "in-dom" } else { "transfer" };
        out.push_str(&format!(
            "{:<train_w$} {:<eval_w$} {:>9} {:>7.3} {:>7.3} {:>7} {:>6.3}\n",
            r.train_region, r.eval_region, kind, r.map50, r.f1, r.images, r.coverage
        ));
    }
    out
}

/// One shard's or region's coverage line for [`render_coverage_table`]:
/// what a supervised partial run planned, completed, quarantined, and
/// skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRow {
    /// What the row covers (e.g. `"shard 2"` or a region name).
    pub label: String,
    /// Locations planned for this unit.
    pub planned: usize,
    /// Locations fully completed.
    pub completed: usize,
    /// Locations quarantined as poison.
    pub quarantined: usize,
    /// Locations skipped by a watchdog timeout.
    pub skipped: usize,
    /// Outcome label (e.g. `"completed"` / `"timed-out"`).
    pub outcome: String,
}

/// Renders coverage rows as an aligned text table, in the same report
/// style as [`render_transfer_table`].
///
/// ```
/// use nbhd_eval::{render_coverage_table, CoverageRow};
///
/// let rows = vec![CoverageRow {
///     label: "shard 0".into(),
///     planned: 12,
///     completed: 10,
///     quarantined: 1,
///     skipped: 1,
///     outcome: "timed-out".into(),
/// }];
/// let text = render_coverage_table("Survey coverage", &rows);
/// assert!(text.contains("shard 0"));
/// assert!(text.contains("83.3%"));
/// assert!(text.contains("timed-out"));
/// ```
pub fn render_coverage_table(title: &str, rows: &[CoverageRow]) -> String {
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain(["Unit".len()])
        .max()
        .unwrap_or(4);
    let outcome_w = rows
        .iter()
        .map(|r| r.outcome.len())
        .chain(["Outcome".len()])
        .max()
        .unwrap_or(7);
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<label_w$} {:>8} {:>10} {:>12} {:>8} {:>9} {:>outcome_w$}\n",
        "Unit", "Planned", "Completed", "Quarantined", "Skipped", "Coverage", "Outcome"
    ));
    for r in rows {
        let coverage = if r.planned == 0 {
            1.0
        } else {
            r.completed as f64 / r.planned as f64
        };
        out.push_str(&format!(
            "{:<label_w$} {:>8} {:>10} {:>12} {:>8} {:>8.1}% {:>outcome_w$}\n",
            r.label,
            r.planned,
            r.completed,
            r.quarantined,
            r.skipped,
            coverage * 100.0,
            r.outcome
        ));
    }
    out
}

/// One model's health line for [`render_health_table`]: availability,
/// breaker activity, and resilience counters over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRow {
    /// Model name.
    pub model: String,
    /// Fraction of requests answered, in `[0, 1]`.
    pub availability: f64,
    /// Final breaker state, e.g. `"closed"`.
    pub breaker_state: String,
    /// Breaker state transitions over the run.
    pub transitions: u64,
    /// Completed trip/recover cycles — a high count means the backend is
    /// flapping (bouncing between open and closed), not merely down.
    pub flaps: u64,
    /// Attempts beyond the first.
    pub retries: u64,
    /// Requests rejected instantly by an open breaker.
    pub fail_fast: u64,
    /// Hedge backups fired / won.
    pub hedges: (u64, u64),
    /// Virtual milliseconds spent in retry backoff.
    pub backoff_ms: u64,
}

/// Renders per-model health rows as an aligned text table, in the same
/// report style as [`render_metrics_table`].
///
/// ```
/// use nbhd_eval::{render_health_table, HealthRow};
///
/// let rows = vec![HealthRow {
///     model: "gemini-1.5-pro".into(),
///     availability: 0.97,
///     breaker_state: "closed".into(),
///     transitions: 0,
///     flaps: 0,
///     retries: 12,
///     fail_fast: 0,
///     hedges: (3, 2),
///     backoff_ms: 4100,
/// }];
/// let text = render_health_table("Model health", &rows);
/// assert!(text.contains("gemini-1.5-pro"));
/// assert!(text.contains("97.0%"));
/// ```
pub fn render_health_table(title: &str, rows: &[HealthRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<22} {:>7} {:>10} {:>6} {:>6} {:>8} {:>9} {:>9} {:>11}\n",
        "Model", "Avail", "Breaker", "Trans", "Flaps", "Retries", "FailFast", "Hedges", "Backoff"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>6.1}% {:>10} {:>6} {:>6} {:>8} {:>9} {:>5}/{:<3} {:>8} ms\n",
            r.model,
            r.availability * 100.0,
            r.breaker_state,
            r.transitions,
            r.flaps,
            r.retries,
            r.fail_fast,
            r.hedges.0,
            r.hedges.1,
            r.backoff_ms
        ));
    }
    out
}

/// One labeled execution-substrate snapshot for [`render_exec_table`]:
/// typically one row per pipeline stage or bench section, built from
/// [`nbhd_exec::ExecSnapshot::from_metrics`] deltas over a run-scoped
/// registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRow<'a> {
    /// What the snapshot covers (e.g. `"survey build"`).
    pub label: &'a str,
    /// The substrate counters for that span.
    pub snapshot: nbhd_exec::ExecSnapshot,
}

/// Renders execution-substrate counters as an aligned text table, in the
/// same report style as [`render_health_table`].
///
/// ```
/// use nbhd_eval::{render_exec_table, ExecRow};
///
/// let rows = vec![ExecRow {
///     label: "survey build",
///     snapshot: nbhd_exec::ExecSnapshot {
///         parallel_calls: 3,
///         serial_calls: 1,
///         tasks: 96,
///         chunks: 24,
///         steals: 5,
///         busy_us: 120_000,
///     },
/// }];
/// let text = render_exec_table("Execution substrate", &rows);
/// assert!(text.contains("survey build"));
/// assert!(text.contains("96"));
/// ```
pub fn render_exec_table(title: &str, rows: &[ExecRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>8} {:>11}\n",
        "Span", "Parallel", "Serial", "Tasks", "Chunks", "Steals", "Busy"
    ));
    for r in rows {
        let s = r.snapshot;
        out.push_str(&format!(
            "{:<22} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8.1} ms\n",
            r.label,
            s.parallel_calls,
            s.serial_calls,
            s.tasks,
            s.chunks,
            s.steals,
            s.busy_ms()
        ));
    }
    out
}

/// Renders a [`RunSummary`] as a per-stage timing tree followed by the
/// unified counter rollup, in the same aligned-text style as the other
/// report tables. Spans indent by nesting depth and show both time
/// scales; wall counters and gauges are marked so readers know they are
/// off the deterministic surface.
///
/// ```
/// use nbhd_eval::render_run_summary;
/// use nbhd_obs::Obs;
///
/// let obs = Obs::new();
/// let stage = obs.tracer().enter("survey");
/// obs.clock().advance_ms(40);
/// obs.registry().add("survey.captures", 20);
/// stage.record();
/// let text = render_run_summary("Run summary", &obs.summary());
/// assert!(text.contains("survey"));
/// assert!(text.contains("survey.captures"));
/// ```
pub fn render_run_summary(title: &str, summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let labels: Vec<String> = summary
        .spans
        .iter()
        .map(|s| format!("{:indent$}{}", "", s.name, indent = 2 * s.depth))
        .collect();
    let stage_w = labels
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(0)
        .max("Stage".len());
    out.push_str(&format!(
        "{:<stage_w$} {:>12} {:>12}\n",
        "Stage", "Virtual", "Wall"
    ));
    for (label, span) in labels.iter().zip(&summary.spans) {
        out.push_str(&format!(
            "{:<stage_w$} {:>9} ms {:>9.1} ms\n",
            label,
            span.virtual_ms(),
            span.wall_us as f64 / 1000.0
        ));
    }
    let m = &summary.metrics;
    let name_w = m
        .counters
        .keys()
        .chain(m.wall_counters.keys())
        .chain(m.gauges.keys())
        .map(String::len)
        .max()
        .unwrap_or(0)
        .max("Counter".len());
    out.push_str(&format!("{:<name_w$} {:>14}\n", "Counter", "Value"));
    for (name, value) in &m.counters {
        out.push_str(&format!("{name:<name_w$} {value:>14}\n"));
    }
    for (name, value) in &m.wall_counters {
        out.push_str(&format!("{name:<name_w$} {value:>14} (wall)\n"));
    }
    for (name, value) in &m.gauges {
        out.push_str(&format!("{name:<name_w$} {value:>14.4} (gauge)\n"));
    }
    if !m.histograms.is_empty() || !m.wall_histograms.is_empty() {
        let hist_rows: Vec<(&String, &Histogram, bool)> = m
            .histograms
            .iter()
            .map(|(n, h)| (n, h, false))
            .chain(m.wall_histograms.iter().map(|(n, h)| (n, h, true)))
            .collect();
        let hist_w = hist_rows
            .iter()
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("Histogram".len());
        out.push_str(&format!(
            "{:<hist_w$} {:>8} {:>8} {:>8} {:>8}\n",
            "Histogram", "Count", "P50", "P99", "Max"
        ));
        for (name, h, wall) in hist_rows {
            out.push_str(&format!(
                "{:<hist_w$} {:>8} {:>8} {:>8} {:>8}{}\n",
                name,
                h.count(),
                h.p50(),
                h.p99(),
                h.max(),
                if wall { " (wall)" } else { "" }
            ));
        }
    }
    out
}

/// Renders named histograms as an aligned percentile table, in the same
/// report style as [`render_exec_table`] — the per-model latency view
/// printed by `examples/quickstart.rs`.
///
/// ```
/// use nbhd_eval::render_hist_table;
/// use nbhd_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for ms in [220, 450, 900] {
///     h.record(ms);
/// }
/// let text = render_hist_table("Latency (ms)", &[("gemini-1.5-pro".into(), h)]);
/// assert!(text.contains("gemini-1.5-pro"));
/// assert!(text.contains("900"));
/// ```
pub fn render_hist_table(title: &str, rows: &[(String, Histogram)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let name_w = rows
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0)
        .max("Name".len());
    out.push_str(&format!(
        "{:<name_w$} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "Name", "Count", "Min", "P50", "P90", "P99", "Max"
    ));
    for (name, h) in rows {
        out.push_str(&format!(
            "{:<name_w$} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
            name,
            h.count(),
            h.min(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max()
        ));
    }
    out
}

/// Formats a budget value: integral limits and counts print without a
/// fractional part, ratios and fractions keep four places.
pub(crate) fn budget_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value:.4}")
    }
}

/// Renders a [`BudgetReport`] as an aligned per-rule verdict table —
/// observed vs limit, `ok`/`FAIL` per rule — followed by the typed
/// violation findings and a final `PASS`/`FAIL` verdict line. This is
/// the human-readable face of the `obs::budget` absolute gate, the
/// companion to [`render_run_diff`]'s relative one.
pub fn render_budget_table(title: &str, report: &BudgetReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\nspec: {}  artifact: {}\n",
        report.spec_name, report.artifact_name
    ));
    if !report.verdicts.is_empty() {
        let rule_w = report
            .verdicts
            .iter()
            .map(|v| v.rule.len())
            .max()
            .unwrap_or(0)
            .max("Rule".len());
        out.push_str(&format!(
            "{:<rule_w$} {:>12} {:>12} {:>7}\n",
            "Rule", "Observed", "Limit", "Verdict"
        ));
        for v in &report.verdicts {
            out.push_str(&format!(
                "{:<rule_w$} {:>12} {:>12} {:>7}\n",
                v.rule,
                budget_value(v.observed),
                budget_value(v.limit),
                if v.pass { "ok" } else { "FAIL" }
            ));
        }
    }
    for v in &report.violations {
        out.push_str(&format!(
            "VIOLATION [{}] {}: {} ({} vs limit {})\n",
            v.kind.label(),
            v.rule,
            v.detail,
            budget_value(v.observed),
            budget_value(v.limit)
        ));
    }
    if report.is_pass() {
        out.push_str("PASS: budget holds\n");
    } else {
        out.push_str(&format!("FAIL: {} violation(s)\n", report.violations.len()));
    }
    out
}

/// Renders a [`RunDiff`] as aligned tables — changed counters, stage
/// duration ratios, histogram percentile shifts — followed by the
/// regression findings and a final `PASS`/`FAIL` verdict line. This is
/// the human-readable face of the `obs::diff` regression gate.
///
/// Unchanged counters and histograms are elided to keep the report
/// focused; stages always print (their ratios are the point of the
/// comparison).
pub fn render_run_diff(title: &str, diff: &RunDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\nbaseline: {}  current: {}\n",
        diff.baseline_name, diff.current_name
    ));

    let changed: Vec<_> = diff
        .counters
        .iter()
        .filter(|c| c.baseline != c.current)
        .collect();
    if !changed.is_empty() {
        let name_w = changed
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0)
            .max("Counter".len());
        out.push_str(&format!(
            "{:<name_w$} {:>12} {:>12}\n",
            "Counter", "Baseline", "Current"
        ));
        for c in &changed {
            out.push_str(&format!(
                "{:<name_w$} {:>12} {:>12}\n",
                c.name, c.baseline, c.current
            ));
        }
    }

    if !diff.stages.is_empty() {
        let key_w = diff
            .stages
            .iter()
            .map(|s| s.key.len())
            .max()
            .unwrap_or(0)
            .max("Stage".len());
        out.push_str(&format!(
            "{:<key_w$} {:>12} {:>12} {:>7}\n",
            "Stage", "Baseline", "Current", "Ratio"
        ));
        for s in &diff.stages {
            out.push_str(&format!(
                "{:<key_w$} {:>9} ms {:>9} ms {:>6.2}x\n",
                s.key,
                s.baseline_vms,
                s.current_vms,
                s.ratio()
            ));
        }
    }

    let shifted: Vec<_> = diff
        .hists
        .iter()
        .filter(|h| h.baseline_p50 != h.current_p50 || h.baseline_p99 != h.current_p99)
        .collect();
    if !shifted.is_empty() {
        let name_w = shifted
            .iter()
            .map(|h| h.name.len())
            .max()
            .unwrap_or(0)
            .max("Histogram".len());
        out.push_str(&format!(
            "{:<name_w$} {:>16} {:>16}\n",
            "Histogram", "P50", "P99"
        ));
        for h in &shifted {
            out.push_str(&format!(
                "{:<name_w$} {:>7} -> {:>5} {:>7} -> {:>5}\n",
                h.name, h.baseline_p50, h.current_p50, h.baseline_p99, h.current_p99
            ));
        }
    }

    for r in &diff.regressions {
        out.push_str(&format!(
            "REGRESSION [{}] {}: {} ({} -> {})\n",
            r.kind.label(),
            r.name,
            r.detail,
            r.baseline,
            r.current
        ));
    }
    if diff.is_pass() {
        out.push_str("PASS: no regressions\n");
    } else {
        out.push_str(&format!("FAIL: {} regression(s)\n", diff.regressions.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassMetrics;
    use nbhd_types::IndicatorMap;

    #[test]
    fn table_lists_classes_in_paper_order() {
        let t = MetricsTable::from_per_class(IndicatorMap::fill(ClassMetrics::default()));
        let text = render_metrics_table("T", &t);
        let sl = text.find("Streetlight").unwrap();
        let sw = text.find("Sidewalk").unwrap();
        let ap = text.find("Apartment").unwrap();
        assert!(sl < sw && sw < ap);
    }

    #[test]
    fn comparison_rows_show_delta() {
        let rows = vec![ComparisonRow::new("avg accuracy", 0.885, 0.87)];
        let text = render_comparison("F5", &rows);
        assert!(text.contains("0.885"));
        assert!(text.contains("0.015"));
        assert!((rows[0].delta() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn health_table_lists_every_model() {
        let rows = vec![
            HealthRow {
                model: "gemini".into(),
                availability: 1.0,
                breaker_state: "closed".into(),
                transitions: 0,
                flaps: 0,
                retries: 0,
                fail_fast: 0,
                hedges: (0, 0),
                backoff_ms: 0,
            },
            HealthRow {
                model: "grok".into(),
                availability: 0.125,
                breaker_state: "open".into(),
                transitions: 3,
                flaps: 1,
                retries: 40,
                fail_fast: 120,
                hedges: (5, 1),
                backoff_ms: 90_000,
            },
        ];
        let text = render_health_table("Health", &rows);
        assert!(text.contains("gemini"));
        assert!(text.contains("grok"));
        assert!(text.contains("open"));
        assert!(text.contains("12.5%"));
        assert!(text.contains("120"));
    }

    #[test]
    fn exec_table_renders_counters() {
        let rows = vec![
            ExecRow {
                label: "survey",
                snapshot: nbhd_exec::ExecSnapshot {
                    parallel_calls: 2,
                    serial_calls: 0,
                    tasks: 96,
                    chunks: 16,
                    steals: 4,
                    busy_us: 2_500,
                },
            },
            ExecRow {
                label: "train",
                snapshot: nbhd_exec::ExecSnapshot::default(),
            },
        ];
        let text = render_exec_table("Exec", &rows);
        assert!(text.contains("survey"));
        assert!(text.contains("train"));
        assert!(text.contains("96"));
        assert!(text.contains("2.5 ms"));
    }

    #[test]
    fn run_summary_indents_nested_stages_and_marks_wall_metrics() {
        use nbhd_obs::Obs;
        let obs = Obs::new();
        let run = obs.tracer().enter("run");
        obs.clock().advance_ms(10);
        let survey = obs.tracer().enter("survey");
        obs.clock().advance_ms(30);
        survey.record();
        run.record();
        obs.registry().add("survey.captures", 12);
        obs.registry().add_wall("exec.steals", 4);
        obs.registry().add_gauge("client.gemini.usd", 0.5);

        let text = render_run_summary("Run summary", &obs.summary());
        assert!(text.contains("Run summary"), "{text}");
        // nested stage indents by depth under its parent
        let run_line = text.lines().find(|l| l.starts_with("run ")).unwrap();
        let survey_line = text.lines().find(|l| l.starts_with("  survey")).unwrap();
        assert!(run_line.contains("40 ms"), "{run_line}");
        assert!(survey_line.contains("30 ms"), "{survey_line}");
        // counters render; off-surface metrics are marked
        assert!(text.contains("survey.captures"), "{text}");
        let steals = text.lines().find(|l| l.contains("exec.steals")).unwrap();
        assert!(steals.ends_with("(wall)"), "{steals}");
        let usd = text
            .lines()
            .find(|l| l.contains("client.gemini.usd"))
            .unwrap();
        assert!(usd.ends_with("(gauge)"), "{usd}");
    }

    #[test]
    fn run_summary_renders_histograms_with_wall_marker() {
        use nbhd_obs::Obs;
        let obs = Obs::new();
        let span = obs.tracer().enter("run");
        obs.clock().advance_ms(5);
        span.record();
        obs.registry().record_hist("client.gemini.latency_ms", 420);
        obs.registry().record_hist("client.gemini.latency_ms", 900);
        obs.registry().record_wall_hist("exec.chunk_items", 8);

        let text = render_run_summary("Run summary", &obs.summary());
        let lat = text
            .lines()
            .find(|l| l.contains("client.gemini.latency_ms"))
            .unwrap();
        assert!(lat.contains('2'), "{lat}"); // count column
        assert!(!lat.ends_with("(wall)"), "{lat}");
        let chunk = text
            .lines()
            .find(|l| l.contains("exec.chunk_items"))
            .unwrap();
        assert!(chunk.ends_with("(wall)"), "{chunk}");
    }

    #[test]
    fn hist_table_lists_percentile_columns() {
        let mut h = Histogram::new();
        for ms in [220, 450, 900] {
            h.record(ms);
        }
        let text = render_hist_table("Latency (ms)", &[("gemini-1.5-pro".into(), h)]);
        assert!(text.contains("Latency (ms)"));
        assert!(text.contains("P50"));
        assert!(text.contains("P99"));
        let row = text.lines().find(|l| l.contains("gemini-1.5-pro")).unwrap();
        assert!(row.contains("900"), "{row}"); // max is exact
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn run_diff_report_flags_slowdown_and_prints_verdict() {
        use nbhd_obs::{diff, DiffThresholds, Obs, RunArtifact};
        let make = |survey_ms: u64, lat: u64| {
            let obs = Obs::new();
            let run = obs.tracer().enter("run");
            let survey = obs.tracer().enter("survey");
            obs.clock().advance_ms(survey_ms);
            survey.record();
            run.record();
            obs.registry().add("survey.captures", 12);
            obs.registry().record_hist("client.latency_ms", lat);
            RunArtifact::from_obs("r", &obs)
        };
        let base = make(40, 100);

        let self_text = render_run_diff("Diff", &diff(&base, &base, &DiffThresholds::default()));
        assert!(self_text.contains("PASS: no regressions"), "{self_text}");
        assert!(!self_text.contains("REGRESSION"), "{self_text}");

        let slow = make(120, 500);
        let d = diff(&base, &slow, &DiffThresholds::default());
        let text = render_run_diff("Diff", &d);
        assert!(text.contains("FAIL:"), "{text}");
        assert!(text.contains("REGRESSION [stage]"), "{text}");
        assert!(text.contains("REGRESSION [hist]"), "{text}");
        // stage table shows the ratio; hist table shows the shift
        let survey_row = text.lines().find(|l| l.starts_with("run/survey")).unwrap();
        assert!(survey_row.contains("3.00x"), "{survey_row}");
        assert!(text.contains("client.latency_ms"), "{text}");
    }

    #[test]
    fn budget_table_renders_verdicts_violations_and_footer() {
        use nbhd_obs::{BudgetReport, BudgetViolation, BudgetViolationKind, RuleVerdict};
        let pass = BudgetReport {
            spec_name: "budget".into(),
            artifact_name: "run".into(),
            verdicts: vec![RuleVerdict {
                rule: "stage run/survey".into(),
                observed: 120.0,
                limit: 180.0,
                pass: true,
            }],
            violations: vec![],
        };
        let text = render_budget_table("Budget", &pass);
        assert!(text.contains("spec: budget  artifact: run"), "{text}");
        assert!(text.contains("PASS: budget holds"), "{text}");
        assert!(!text.contains("VIOLATION"), "{text}");
        // integral values print without a fractional tail
        let row = text.lines().find(|l| l.starts_with("stage ")).unwrap();
        assert!(row.contains("120") && !row.contains("120.0"), "{row}");

        let fail = BudgetReport {
            spec_name: "budget".into(),
            artifact_name: "run".into(),
            verdicts: vec![RuleVerdict {
                rule: "ratio.max rejected".into(),
                observed: 0.75,
                limit: 0.5,
                pass: false,
            }],
            violations: vec![BudgetViolation {
                kind: BudgetViolationKind::RatioOver,
                rule: "ratio.max rejected".into(),
                observed: 0.75,
                limit: 0.5,
                detail: "rejected fraction over ceiling".into(),
            }],
        };
        let text = render_budget_table("Budget", &fail);
        assert!(text.contains("FAIL: 1 violation(s)"), "{text}");
        assert!(
            text.contains(
                "VIOLATION [ratio-over] ratio.max rejected: rejected fraction over ceiling"
            ),
            "{text}"
        );
        assert!(text.contains("0.7500") && text.contains("0.5000"), "{text}");
    }

    #[test]
    fn transfer_rows_align_and_classify_kind() {
        let rows = vec![
            TransferRow {
                train_region: "hidalgo+dallas".into(),
                eval_region: "hidalgo+dallas".into(),
                map50: 0.512,
                f1: 0.701,
                images: 18,
                coverage: 1.0,
            },
            TransferRow {
                train_region: "hidalgo+dallas".into(),
                eval_region: "grid-3".into(),
                map50: 0.388,
                f1: 0.6,
                images: 9,
                coverage: 0.917,
            },
        ];
        assert!(rows[0].in_domain());
        assert!(!rows[1].in_domain());
        let text = render_transfer_table("Transfer", &rows);
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("in-dom"), "{text}");
        assert!(lines[2].contains("transfer"), "{text}");
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{text}"
        );
    }

    #[test]
    fn coverage_table_aligns_and_shows_fractions() {
        let rows = vec![
            CoverageRow {
                label: "shard 0".into(),
                planned: 12,
                completed: 12,
                quarantined: 0,
                skipped: 0,
                outcome: "completed".into(),
            },
            CoverageRow {
                label: "shard 1".into(),
                planned: 12,
                completed: 6,
                quarantined: 2,
                skipped: 4,
                outcome: "timed-out".into(),
            },
        ];
        let text = render_coverage_table("Coverage", &rows);
        assert!(text.contains("100.0%"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("timed-out"), "{text}");
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{text}"
        );
    }

    #[test]
    fn rows_align_in_columns() {
        let t = MetricsTable::from_per_class(IndicatorMap::fill(ClassMetrics {
            precision: 0.5,
            recall: 0.5,
            f1: 0.5,
            accuracy: 0.5,
        }));
        let text = render_metrics_table("T", &t);
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{text}"
        );
    }
}
