//! Bootstrap confidence intervals over per-image statistics.
//!
//! Resamples fan out over the shared execution substrate: each resample
//! draws from its own [`nbhd_exec::child_seed`]-derived RNG, so the
//! interval is identical at any worker count (and identical to a
//! sequential loop over the same per-resample seeds).

use nbhd_types::rng::{child_seed, rng_from};
use rand::Rng;

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean of the observed values).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Bootstraps a confidence interval for the mean of `values` (e.g. per-image
/// correctness indicators) at the given confidence `level` (e.g. 0.95).
///
/// # Panics
///
/// Panics when `values` is empty, `resamples` is zero, or `level` is not in
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use nbhd_eval::bootstrap_mean;
/// let correct: Vec<f64> = (0..200).map(|i| if i % 5 == 0 { 0.0 } else { 1.0 }).collect();
/// let ci = bootstrap_mean(&correct, 500, 0.95, 42);
/// assert!((ci.estimate - 0.8).abs() < 1e-9);
/// assert!(ci.lo < 0.8 && 0.8 < ci.hi);
/// assert!(ci.hi - ci.lo < 0.2);
/// ```
pub fn bootstrap_mean(values: &[f64], resamples: usize, level: f64, seed: u64) -> ConfidenceInterval {
    assert!(!values.is_empty(), "bootstrap requires observations");
    assert!(resamples > 0, "bootstrap requires at least one resample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level must be in (0, 1)");
    let n = values.len();
    let estimate = values.iter().sum::<f64>() / n as f64;
    let root = child_seed(seed, "bootstrap");
    let order: Vec<u64> = (0..resamples as u64).collect();
    let mut means = nbhd_exec::par_map(&order, |&resample| {
        let mut rng = rng_from(nbhd_exec::child_seed(root, resample));
        let mut sum = 0.0;
        for _ in 0..n {
            sum += values[rng.random_range(0..n)];
        }
        sum / n as f64
    });
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)) as usize).min(resamples - 1);
    ConfidenceInterval {
        estimate,
        lo: means[lo_idx],
        hi: means[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_estimate() {
        let vals: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let ci = bootstrap_mean(&vals, 300, 0.9, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    }

    #[test]
    fn constant_values_give_degenerate_interval() {
        let vals = vec![0.7; 50];
        let ci = bootstrap_mean(&vals, 200, 0.95, 2);
        assert!((ci.lo - 0.7).abs() < 1e-12);
        assert!((ci.hi - 0.7).abs() < 1e-12);
    }

    #[test]
    fn more_data_narrows_the_interval() {
        let small: Vec<f64> = (0..30).map(|i| ((i * 7) % 10) as f64 / 10.0).collect();
        let big: Vec<f64> = (0..3000).map(|i| ((i * 7) % 10) as f64 / 10.0).collect();
        let ci_small = bootstrap_mean(&small, 400, 0.95, 3);
        let ci_big = bootstrap_mean(&big, 400, 0.95, 3);
        assert!(ci_big.hi - ci_big.lo < ci_small.hi - ci_small.lo);
    }

    #[test]
    fn deterministic_per_seed() {
        let vals: Vec<f64> = (0..64).map(|i| (i % 3) as f64).collect();
        let a = bootstrap_mean(&vals, 100, 0.95, 9);
        let b = bootstrap_mean(&vals, 100, 0.95, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "observations")]
    fn empty_input_panics() {
        let _ = bootstrap_mean(&[], 10, 0.95, 1);
    }
}
