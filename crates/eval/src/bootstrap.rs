//! Bootstrap confidence intervals over per-image statistics.
//!
//! Resamples fan out over the shared execution substrate: each resample
//! draws from its own [`nbhd_exec::child_seed`]-derived RNG, so the
//! interval is identical at any worker count (and identical to a
//! sequential loop over the same per-resample seeds).

use nbhd_exec::ScopedPool;
use nbhd_journal::CheckpointStore;
use nbhd_types::rng::{child_seed, rng_from};
use rand::Rng;

/// Journal record kind for completed bootstrap resamples.
pub const RESAMPLE_RECORD_KIND: &str = "resample";

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean of the observed values).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Bootstraps a confidence interval for the mean of `values` (e.g. per-image
/// correctness indicators) at the given confidence `level` (e.g. 0.95).
///
/// # Panics
///
/// Panics when `values` is empty, `resamples` is zero, or `level` is not in
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use nbhd_eval::bootstrap_mean;
/// let correct: Vec<f64> = (0..200).map(|i| if i % 5 == 0 { 0.0 } else { 1.0 }).collect();
/// let ci = bootstrap_mean(&correct, 500, 0.95, 42);
/// assert!((ci.estimate - 0.8).abs() < 1e-9);
/// assert!(ci.lo < 0.8 && 0.8 < ci.hi);
/// assert!(ci.hi - ci.lo < 0.2);
/// ```
pub fn bootstrap_mean(
    values: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!values.is_empty(), "bootstrap requires observations");
    assert!(resamples > 0, "bootstrap requires at least one resample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0, 1)"
    );
    let root = child_seed(seed, "bootstrap");
    let order: Vec<u64> = (0..resamples as u64).collect();
    let means = nbhd_exec::par_map(&order, |&resample| resample_mean(values, root, resample));
    assemble_interval(values, means, resamples, level)
}

/// [`bootstrap_mean`] with per-resample checkpointing: each resample's mean
/// is journaled under its index, so a resumed run replays completed
/// resamples instead of redrawing them. The interval is identical to an
/// uninterrupted [`bootstrap_mean`] — replayed means roundtrip through JSON
/// bit-exactly, and each resample's RNG depends only on `(seed, index)`.
///
/// # Errors
///
/// Returns an error when the store fails to persist a resample or holds a
/// malformed resample record.
///
/// # Panics
///
/// Same input contract as [`bootstrap_mean`].
pub fn bootstrap_mean_checkpointed(
    values: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    store: &dyn CheckpointStore,
) -> nbhd_types::Result<ConfidenceInterval> {
    bootstrap_mean_pooled(
        values,
        resamples,
        level,
        seed,
        store,
        &ScopedPool::default(),
    )
}

/// [`bootstrap_mean_checkpointed`] riding a caller-supplied [`ScopedPool`]:
/// the resample fan-out runs at the pool's parallelism and, when the pool
/// carries a run-scoped metrics registry, its execution counters land
/// there. The interval is identical at any pool setting.
///
/// # Errors
///
/// Returns an error when the store fails to persist a resample or holds a
/// malformed resample record.
///
/// # Panics
///
/// Same input contract as [`bootstrap_mean`].
pub fn bootstrap_mean_pooled(
    values: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    store: &dyn CheckpointStore,
    pool: &ScopedPool,
) -> nbhd_types::Result<ConfidenceInterval> {
    assert!(!values.is_empty(), "bootstrap requires observations");
    assert!(resamples > 0, "bootstrap requires at least one resample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0, 1)"
    );
    let root = child_seed(seed, "bootstrap");
    let order: Vec<u64> = (0..resamples as u64).collect();
    let drawn = pool.map(&order, |&resample| {
        match store.load(RESAMPLE_RECORD_KIND, &resample.to_string()) {
            Some(value) => match value.as_f64() {
                Some(mean) => Ok((resample, mean, true)),
                None => Err(nbhd_types::Error::parse(format!(
                    "resample record {resample}: not a number"
                ))),
            },
            None => Ok((resample, resample_mean(values, root, resample), false)),
        }
    });
    let mut means = Vec::with_capacity(resamples);
    for item in drawn {
        let (resample, mean, replayed) = item?;
        if !replayed {
            store.save(
                RESAMPLE_RECORD_KIND,
                &resample.to_string(),
                serde_json::Value::from(mean),
            )?;
        }
        means.push(mean);
    }
    Ok(assemble_interval(values, means, resamples, level))
}

/// One bootstrap resample's mean, drawn from its own `(root, index)` seed.
fn resample_mean(values: &[f64], root: u64, resample: u64) -> f64 {
    let n = values.len();
    let mut rng = rng_from(nbhd_exec::child_seed(root, resample));
    let mut sum = 0.0;
    for _ in 0..n {
        sum += values[rng.random_range(0..n)];
    }
    sum / n as f64
}

/// Sorts the resample means into the percentile interval.
fn assemble_interval(
    values: &[f64],
    mut means: Vec<f64>,
    resamples: usize,
    level: f64,
) -> ConfidenceInterval {
    let estimate = values.iter().sum::<f64>() / values.len() as f64;
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)) as usize).min(resamples - 1);
    ConfidenceInterval {
        estimate,
        lo: means[lo_idx],
        hi: means[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_estimate() {
        let vals: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let ci = bootstrap_mean(&vals, 300, 0.9, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    }

    #[test]
    fn constant_values_give_degenerate_interval() {
        let vals = vec![0.7; 50];
        let ci = bootstrap_mean(&vals, 200, 0.95, 2);
        assert!((ci.lo - 0.7).abs() < 1e-12);
        assert!((ci.hi - 0.7).abs() < 1e-12);
    }

    #[test]
    fn more_data_narrows_the_interval() {
        let small: Vec<f64> = (0..30).map(|i| ((i * 7) % 10) as f64 / 10.0).collect();
        let big: Vec<f64> = (0..3000).map(|i| ((i * 7) % 10) as f64 / 10.0).collect();
        let ci_small = bootstrap_mean(&small, 400, 0.95, 3);
        let ci_big = bootstrap_mean(&big, 400, 0.95, 3);
        assert!(ci_big.hi - ci_big.lo < ci_small.hi - ci_small.lo);
    }

    #[test]
    fn deterministic_per_seed() {
        let vals: Vec<f64> = (0..64).map(|i| (i % 3) as f64).collect();
        let a = bootstrap_mean(&vals, 100, 0.95, 9);
        let b = bootstrap_mean(&vals, 100, 0.95, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "observations")]
    fn empty_input_panics() {
        let _ = bootstrap_mean(&[], 10, 0.95, 1);
    }

    #[test]
    fn pooled_bootstrap_matches_and_records_exec_counters() {
        use nbhd_exec::Parallelism;
        use nbhd_journal::MemoryStore;
        use nbhd_obs::MetricsRegistry;
        use std::sync::Arc;
        let vals: Vec<f64> = (0..80).map(|i| ((i * 13) % 7) as f64 / 7.0).collect();
        let plain = bootstrap_mean(&vals, 120, 0.95, 17);
        let registry = Arc::new(MetricsRegistry::new());
        let pool = ScopedPool::new(Parallelism::fixed(4)).with_metrics(Arc::clone(&registry));
        let store = MemoryStore::new();
        let pooled = bootstrap_mean_pooled(&vals, 120, 0.95, 17, &store, &pool).unwrap();
        assert_eq!(plain, pooled, "pool choice must not change the interval");
        assert_eq!(
            registry.snapshot().counters[nbhd_exec::TASKS_METRIC],
            120,
            "one task per resample"
        );
    }

    #[test]
    fn checkpointed_interval_is_identical_and_replays() {
        use nbhd_journal::MemoryStore;
        let vals: Vec<f64> = (0..80).map(|i| ((i * 13) % 7) as f64 / 7.0).collect();
        let plain = bootstrap_mean(&vals, 120, 0.95, 17);

        let store = MemoryStore::new();
        let first = bootstrap_mean_checkpointed(&vals, 120, 0.95, 17, &store).unwrap();
        assert_eq!(plain, first, "journaling must not change the interval");
        assert_eq!(store.load_kind(RESAMPLE_RECORD_KIND).len(), 120);

        // a "restarted" run replays every resample — and a half-journaled
        // store (simulating a crash mid-bootstrap) completes to the same
        // interval
        let resumed = bootstrap_mean_checkpointed(&vals, 120, 0.95, 17, &store).unwrap();
        assert_eq!(plain, resumed);

        let partial = MemoryStore::new();
        for (key, value) in store.load_kind(RESAMPLE_RECORD_KIND).into_iter().take(50) {
            partial.save(RESAMPLE_RECORD_KIND, &key, value).unwrap();
        }
        let completed = bootstrap_mean_checkpointed(&vals, 120, 0.95, 17, &partial).unwrap();
        assert_eq!(plain, completed);
        assert_eq!(partial.load_kind(RESAMPLE_RECORD_KIND).len(), 120);
    }
}
