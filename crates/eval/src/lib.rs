//! Evaluation toolkit: binary confusions, per-class metric tables in the
//! paper's format, majority voting, average precision, bootstrap confidence
//! intervals, and text report rendering.
//!
//! # Examples
//!
//! ```
//! use nbhd_eval::{majority_vote, PresenceEvaluator, TiePolicy};
//! use nbhd_types::{Indicator, IndicatorSet};
//!
//! let truth = IndicatorSet::new().with(Indicator::Powerline);
//! let votes = [
//!     IndicatorSet::new().with(Indicator::Powerline),
//!     IndicatorSet::new(),
//!     IndicatorSet::new().with(Indicator::Powerline).with(Indicator::Sidewalk),
//! ];
//! let voted = majority_vote(&votes, TiePolicy::No);
//! let mut eval = PresenceEvaluator::new();
//! eval.observe(truth, voted);
//! assert_eq!(eval.table().per_class[Indicator::Powerline].recall, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod chart;
mod confusion;
mod curve;
mod html;
mod metrics;
mod report;
mod vote;

pub use bootstrap::{
    bootstrap_mean, bootstrap_mean_checkpointed, bootstrap_mean_pooled, ConfidenceInterval,
    RESAMPLE_RECORD_KIND,
};
pub use chart::{bar_chart, line_chart};
pub use confusion::BinaryConfusion;
pub use curve::{average_precision, precision_recall_at, ScoredPrediction};
pub use html::{render_html_report, render_html_report_with_budget};
pub use metrics::{ClassMetrics, MetricsTable, PresenceEvaluator};
pub use report::{
    render_budget_table, render_comparison, render_coverage_table, render_exec_table,
    render_health_table, render_hist_table, render_metrics_table, render_run_diff,
    render_run_summary, render_transfer_table, ComparisonRow, CoverageRow, ExecRow, HealthRow,
    TransferRow,
};
pub use vote::{
    agreement, majority_vote, quorum_vote, QuorumPolicy, TiePolicy, VoteFallback, VoteProvenance,
};
