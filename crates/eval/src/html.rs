//! Single-file HTML run reports.
//!
//! [`render_html_report`] turns a [`RunArtifact`] into one self-contained
//! HTML document — inline CSS, no scripts fetched, no external assets —
//! that a reviewer can open with zero tooling (the shape wasmer-borealis
//! popularized for its benchmark reports). It renders the run's setup and
//! identity, its coverage tables (or an explicit "not recorded" notice —
//! absent coverage is never presented as full), per-class prevalence,
//! deterministic counters, latency percentile tables, and the stage-span
//! timeline, and embeds the Chrome-trace JSON in a `<script
//! type="application/json">` island for copy-paste into Perfetto.

use nbhd_obs::{BudgetReport, Histogram, RunArtifact};

use crate::report::budget_value;

/// Escapes the five HTML-special characters for text and attribute
/// positions.
fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// One histogram as a percentile table row.
fn hist_row(out: &mut String, name: &str, hist: &Histogram) {
    out.push_str(&format!(
        "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{:.1}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td></tr>\n",
        escape_html(name),
        hist.count(),
        hist.min(),
        hist.mean(),
        hist.p50(),
        hist.p90(),
        hist.p99(),
        hist.max(),
    ));
}

fn hist_table(
    out: &mut String,
    title: &str,
    hists: &std::collections::BTreeMap<String, Histogram>,
) {
    if hists.is_empty() {
        return;
    }
    out.push_str(&format!("<h3>{}</h3>\n", escape_html(title)));
    out.push_str(
        "<table><thead><tr><th>Histogram</th><th>Count</th><th>Min</th>\
         <th>Mean</th><th>P50</th><th>P90</th><th>P99</th><th>Max</th>\
         </tr></thead><tbody>\n",
    );
    for (name, hist) in hists {
        hist_row(out, name, hist);
    }
    out.push_str("</tbody></table>\n");
}

/// Renders a [`RunArtifact`] as one self-contained HTML document.
///
/// The output references no external resources: styles are inline and the
/// Chrome-trace JSON is embedded in a non-executing
/// `<script type="application/json">` island (with `<` escaped so
/// artifact names can never break out of it).
///
/// ```
/// use nbhd_eval::render_html_report;
/// use nbhd_obs::{Obs, RunArtifact};
/// let obs = Obs::new();
/// let stage = obs.tracer().enter("survey");
/// obs.clock().advance_ms(10);
/// stage.record();
/// let html = render_html_report(&RunArtifact::from_obs("smoke", &obs));
/// assert!(html.starts_with("<!DOCTYPE html>"));
/// assert!(html.contains("chrome-trace"));
/// ```
pub fn render_html_report(artifact: &RunArtifact) -> String {
    render_html_report_with_budget(artifact, None)
}

/// [`render_html_report`] plus an optional **Budget** section: when a
/// [`BudgetReport`] is supplied the document opens with the gate verdict
/// — a banner, the per-rule observed-vs-limit table, and every typed
/// violation — so a reviewer sees pass/fail before scrolling into the
/// raw numbers.
pub fn render_html_report_with_budget(
    artifact: &RunArtifact,
    budget: Option<&BudgetReport>,
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let name = escape_html(&artifact.name);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>Run report: {name}</title>\n"));
    out.push_str(
        "<style>\n\
         body { font-family: -apple-system, \"Segoe UI\", Roboto, sans-serif;\n\
                margin: 2rem auto; max-width: 70rem; padding: 0 1rem; color: #1a1a1a; }\n\
         h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }\n\
         h2 { margin-top: 2rem; border-bottom: 1px solid #bbb; padding-bottom: .2rem; }\n\
         table { border-collapse: collapse; margin: .75rem 0; width: 100%; }\n\
         th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }\n\
         thead th { background: #2d333b; color: #fff; }\n\
         tbody tr:nth-child(even) { background: #f4f6f8; }\n\
         tbody tr:hover { background: #e8eef4; }\n\
         td.num { text-align: right; font-variant-numeric: tabular-nums; }\n\
         .notice { background: #fff3cd; border: 1px solid #e0c76b;\n\
                   padding: .6rem .8rem; border-radius: 4px; }\n\
         .budget-pass { background: #d4edda; border: 1px solid #6fbf85;\n\
                        padding: .6rem .8rem; border-radius: 4px; }\n\
         .budget-fail { background: #f8d7da; border: 1px solid #d98a93;\n\
                        padding: .6rem .8rem; border-radius: 4px; }\n\
         code { background: #f0f1f3; padding: .1rem .3rem; border-radius: 3px; }\n\
         </style>\n</head>\n<body>\n",
    );
    out.push_str(&format!("<h1>Run report: {name}</h1>\n"));

    // --- Setup / manifest ---
    out.push_str("<h2>Setup</h2>\n<table><tbody>\n");
    let mut setup = |key: &str, value: String| {
        out.push_str(&format!(
            "<tr><th>{}</th><td>{}</td></tr>\n",
            escape_html(key),
            value
        ));
    };
    setup("Run", name.clone());
    setup("Schema version", artifact.schema_version.to_string());
    match artifact.shard {
        Some(identity) => {
            setup("Shard", format!("{} of {}", identity.index, identity.count));
            setup(
                "Config hash",
                format!("<code>{:016x}</code>", identity.config_hash),
            );
        }
        None => setup("Shard", "whole run (single-process or merged)".to_string()),
    }
    setup("Stage spans", artifact.spans.len().to_string());
    setup(
        "Counters",
        format!(
            "{} deterministic, {} wall",
            artifact.metrics.counters.len(),
            artifact.metrics.wall_counters.len()
        ),
    );
    match &artifact.coverage {
        Some(coverage) => setup(
            "Coverage",
            format!(
                "{:.1}% ({} of {} locations completed)",
                coverage.fraction() * 100.0,
                coverage.completed(),
                coverage.planned()
            ),
        ),
        None => setup("Coverage", "not recorded".to_string()),
    }
    out.push_str("</tbody></table>\n");

    // --- Budget verdict ---
    if let Some(report) = budget {
        out.push_str("<h2>Budget</h2>\n");
        if report.is_pass() {
            out.push_str(&format!(
                "<p class=\"budget-pass\"><strong>PASS</strong>: budget \
                 <code>{}</code> holds against <code>{}</code>.</p>\n",
                escape_html(&report.spec_name),
                escape_html(&report.artifact_name),
            ));
        } else {
            out.push_str(&format!(
                "<p class=\"budget-fail\"><strong>FAIL</strong>: budget \
                 <code>{}</code> — {} violation(s) against \
                 <code>{}</code>.</p>\n",
                escape_html(&report.spec_name),
                report.violations.len(),
                escape_html(&report.artifact_name),
            ));
        }
        if !report.verdicts.is_empty() {
            out.push_str(
                "<table><thead><tr><th>Rule</th><th>Observed</th>\
                 <th>Limit</th><th>Verdict</th></tr></thead><tbody>\n",
            );
            for verdict in &report.verdicts {
                out.push_str(&format!(
                    "<tr><td>{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td>{}</td></tr>\n",
                    escape_html(&verdict.rule),
                    budget_value(verdict.observed),
                    budget_value(verdict.limit),
                    if verdict.pass { "ok" } else { "FAIL" },
                ));
            }
            out.push_str("</tbody></table>\n");
        }
        for violation in &report.violations {
            out.push_str(&format!(
                "<p class=\"budget-fail\">[{}] <code>{}</code>: {}</p>\n",
                escape_html(violation.kind.label()),
                escape_html(&violation.rule),
                escape_html(&violation.detail),
            ));
        }
    }

    // --- Coverage ---
    out.push_str("<h2>Coverage</h2>\n");
    match &artifact.coverage {
        Some(coverage) => {
            out.push_str(
                "<table><thead><tr><th>Shard</th><th>Planned</th>\
                 <th>Completed</th><th>Quarantined</th><th>Skipped</th>\
                 <th>Outcome</th></tr></thead><tbody>\n",
            );
            for row in &coverage.shards {
                out.push_str(&format!(
                    "<tr><td>shard {}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td>{}</td></tr>\n",
                    row.shard,
                    row.planned,
                    row.completed,
                    row.quarantined,
                    row.skipped,
                    if row.timed_out {
                        "timed-out"
                    } else {
                        "completed"
                    },
                ));
            }
            out.push_str("</tbody></table>\n");
            if !coverage.regions.is_empty() {
                out.push_str(
                    "<table><thead><tr><th>Region</th><th>Planned</th>\
                     <th>Completed</th><th>Quarantined</th><th>Skipped</th>\
                     </tr></thead><tbody>\n",
                );
                for row in &coverage.regions {
                    out.push_str(&format!(
                        "<tr><td>{}</td><td class=\"num\">{}</td>\
                         <td class=\"num\">{}</td><td class=\"num\">{}</td>\
                         <td class=\"num\">{}</td></tr>\n",
                        escape_html(&row.region),
                        row.planned,
                        row.completed,
                        row.quarantined,
                        row.skipped,
                    ));
                }
                out.push_str("</tbody></table>\n");
            }
        }
        None => out.push_str(
            "<p class=\"notice\">This artifact records <strong>no coverage \
             section</strong>. Absent coverage means \u{201c}not \
             recorded\u{201d} &mdash; it is never presented as full \
             coverage.</p>\n",
        ),
    }

    // --- Per-class prevalence ---
    let class_rows: Vec<(&str, u64)> = artifact
        .metrics
        .counters
        .iter()
        .filter_map(|(metric, value)| {
            metric
                .strip_prefix("core.class.")
                .and_then(|rest| rest.strip_suffix(".images"))
                .map(|class| (class, *value))
        })
        .collect();
    if !class_rows.is_empty() {
        out.push_str("<h2>Per-class prevalence</h2>\n");
        out.push_str(
            "<table><thead><tr><th>Indicator</th><th>Images containing it</th>\
             </tr></thead><tbody>\n",
        );
        for (class, value) in class_rows {
            out.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{}</td></tr>\n",
                escape_html(class),
                value
            ));
        }
        out.push_str("</tbody></table>\n");
    }

    // --- Deterministic counters ---
    out.push_str("<h2>Counters</h2>\n");
    if artifact.metrics.counters.is_empty() {
        out.push_str("<p>No deterministic counters recorded.</p>\n");
    } else {
        out.push_str("<table><thead><tr><th>Counter</th><th>Value</th></tr></thead><tbody>\n");
        for (metric, value) in &artifact.metrics.counters {
            out.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{}</td></tr>\n",
                escape_html(metric),
                value
            ));
        }
        out.push_str("</tbody></table>\n");
    }

    // --- Latency percentiles ---
    if !artifact.metrics.histograms.is_empty() || !artifact.metrics.wall_histograms.is_empty() {
        out.push_str("<h2>Latency percentiles</h2>\n");
        hist_table(
            &mut out,
            "Deterministic (virtual time)",
            &artifact.metrics.histograms,
        );
        hist_table(&mut out, "Wall clock", &artifact.metrics.wall_histograms);
    }

    // --- Stage spans ---
    out.push_str("<h2>Stage spans</h2>\n");
    if artifact.spans.is_empty() {
        out.push_str("<p>No spans recorded.</p>\n");
    } else {
        out.push_str(
            "<table><thead><tr><th>Stage</th><th>Start (vms)</th>\
             <th>End (vms)</th><th>Duration (vms)</th><th>Wall (&micro;s)</th>\
             </tr></thead><tbody>\n",
        );
        for span in &artifact.spans {
            out.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\n",
                escape_html(&span.key),
                span.start_vms,
                span.end_vms,
                span.end_vms.saturating_sub(span.start_vms),
                span.wall_us,
            ));
        }
        out.push_str("</tbody></table>\n");
    }

    // --- Embedded Chrome trace ---
    out.push_str("<h2>Trace</h2>\n");
    out.push_str(
        "<p>The span tree as Chrome-trace JSON (virtual timeline) is embedded \
         below; copy the contents of the island into a <code>.json</code> \
         file and open it in Perfetto or <code>chrome://tracing</code>.</p>\n",
    );
    let trace = serde_json::to_string(&artifact.chrome_trace())
        .unwrap_or_else(|_| "{}".to_string())
        // JSON strings may contain "</script>"; escaping every "<" keeps
        // the island inert no matter what the run was named.
        .replace('<', "\\u003c");
    out.push_str(&format!(
        "<script type=\"application/json\" id=\"chrome-trace\">{trace}</script>\n",
    ));
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbhd_obs::{Obs, RunArtifact, RunCoverage, ShardCoverageRow, ShardIdentity};

    fn sample_artifact() -> RunArtifact {
        let obs = Obs::new();
        let run = obs.tracer().enter("shard-0");
        obs.clock().advance_ms(25);
        run.record();
        obs.registry().add("core.class.sidewalk.images", 12);
        obs.registry().add("survey.captures", 48);
        obs.registry().record_hist("lat.ms", 30);
        obs.registry().record_hist("lat.ms", 90);
        RunArtifact::from_obs("smoke </script> run", &obs)
    }

    #[test]
    fn report_is_a_single_self_contained_document() {
        let html = render_html_report(&sample_artifact());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        // self-contained: no external fetches of any kind
        for needle in ["href=", "src=", "url(", "@import"] {
            assert!(!html.contains(needle), "external reference via {needle}");
        }
        assert!(html.contains("id=\"chrome-trace\""));
        assert!(html.contains("core.class.sidewalk.images") || html.contains("sidewalk"));
        assert!(html.contains("lat.ms"));
    }

    #[test]
    fn names_cannot_escape_markup_or_the_trace_island() {
        let html = render_html_report(&sample_artifact());
        // the raw name never appears unescaped anywhere in the document
        assert!(!html.contains("</script> run"));
        assert!(html.contains("&lt;/script&gt; run"));
        // inside the JSON island every '<' is unicode-escaped
        let island = html
            .split("id=\"chrome-trace\">")
            .nth(1)
            .and_then(|rest| rest.split("</script>").next())
            .expect("trace island present");
        assert!(!island.contains('<'));
        assert!(island.contains("traceEvents"));
    }

    #[test]
    fn absent_coverage_is_reported_as_not_recorded_never_full() {
        let bare = render_html_report(&sample_artifact());
        assert!(bare.contains("not recorded"));
        assert!(!bare.contains("100.0%"));
        let covered = sample_artifact().with_coverage(RunCoverage {
            shards: vec![ShardCoverageRow {
                shard: 0,
                planned: 10,
                completed: 8,
                quarantined: 2,
                skipped: 0,
                timed_out: false,
            }],
            regions: Vec::new(),
        });
        let html = render_html_report(&covered);
        assert!(html.contains("80.0%"));
        assert!(!html.contains("not recorded"));
    }

    #[test]
    fn budget_section_renders_verdict_and_stays_self_contained() {
        use nbhd_obs::{BudgetSpec, BudgetViolationKind};
        let artifact = sample_artifact();
        // a spec derived at the observed values passes exactly
        let spec = BudgetSpec::from_artifact("smoke-budget", &artifact, 1.0);
        let report = spec.evaluate(&artifact);
        let html = render_html_report_with_budget(&artifact, Some(&report));
        assert!(html.contains("<h2>Budget</h2>"), "budget section present");
        assert!(html.contains("class=\"budget-pass\""), "{html}");
        // the CSS always defines .budget-fail; a passing gate never uses it
        assert!(!html.contains("class=\"budget-fail\""));
        for needle in ["href=", "src=", "url(", "@import"] {
            assert!(!html.contains(needle), "external reference via {needle}");
        }

        // an impossible spec renders the failure banner and the findings
        let impossible = BudgetSpec::from_artifact("smoke-budget", &artifact, 0.0);
        let report = impossible.evaluate(&artifact);
        assert!(!report.is_pass());
        let html = render_html_report_with_budget(&artifact, Some(&report));
        assert!(html.contains("class=\"budget-fail\""), "{html}");
        assert!(
            html.contains(BudgetViolationKind::StageOver.label())
                || html.contains(BudgetViolationKind::HistOver.label()),
            "typed violation labels render: {html}"
        );

        // without a report the section is absent and the plain renderer
        // is byte-identical to the with-budget form
        assert!(!render_html_report(&artifact).contains("<h2>Budget</h2>"));
        assert_eq!(
            render_html_report(&artifact),
            render_html_report_with_budget(&artifact, None)
        );
    }

    #[test]
    fn shard_identity_renders_in_setup() {
        let stamped = sample_artifact().with_shard(ShardIdentity {
            index: 1,
            count: 4,
            config_hash: 0xdead_beef,
        });
        let html = render_html_report(&stamped);
        assert!(html.contains("1 of 4"));
        assert!(html.contains("00000000deadbeef"));
        let whole = render_html_report(&sample_artifact());
        assert!(whole.contains("whole run"));
    }
}
