//! Majority voting across models (the paper's Sec. IV-C2 ensemble).

use nbhd_types::{Indicator, IndicatorSet};

/// Tie-break policy when exactly half the voters say yes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TiePolicy {
    /// Ties resolve to "absent" (conservative; the default).
    #[default]
    No,
    /// Ties resolve to "present".
    Yes,
}

/// Majority-votes per-indicator presence across model answers.
///
/// The paper votes the top three LLMs and accepts a prediction "when at
/// least two models agree"; with an odd voter count ties cannot occur.
///
/// # Panics
///
/// Panics when `votes` is empty.
///
/// # Examples
///
/// ```
/// use nbhd_eval::{majority_vote, TiePolicy};
/// use nbhd_types::{Indicator, IndicatorSet};
///
/// let gemini = IndicatorSet::new().with(Indicator::Sidewalk).with(Indicator::Powerline);
/// let claude = IndicatorSet::new().with(Indicator::Sidewalk);
/// let grok   = IndicatorSet::new().with(Indicator::Powerline);
/// let voted = majority_vote(&[gemini, claude, grok], TiePolicy::No);
/// assert!(voted.contains(Indicator::Sidewalk));   // 2 of 3
/// assert!(voted.contains(Indicator::Powerline));  // 2 of 3
/// assert_eq!(voted.len(), 2);
/// ```
pub fn majority_vote(votes: &[IndicatorSet], ties: TiePolicy) -> IndicatorSet {
    assert!(!votes.is_empty(), "majority vote requires at least one voter");
    let mut out = IndicatorSet::new();
    let n = votes.len();
    for ind in Indicator::ALL {
        let yes = votes.iter().filter(|v| v.contains(ind)).count();
        let present = match (2 * yes).cmp(&n) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => ties == TiePolicy::Yes,
        };
        out.set(ind, present);
    }
    out
}

/// Per-indicator agreement level: the fraction of voters agreeing with the
/// majority answer, in `[0.5, 1.0]`.
pub fn agreement(votes: &[IndicatorSet]) -> nbhd_types::IndicatorMap<f64> {
    assert!(!votes.is_empty(), "agreement requires at least one voter");
    let n = votes.len() as f64;
    nbhd_types::IndicatorMap::from_fn(|ind| {
        let yes = votes.iter().filter(|v| v.contains(ind)).count() as f64;
        (yes / n).max(1.0 - yes / n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(inds: &[Indicator]) -> IndicatorSet {
        inds.iter().copied().collect()
    }

    #[test]
    fn unanimous_vote_passes_through() {
        let s = set(&[Indicator::Apartment, Indicator::Sidewalk]);
        assert_eq!(majority_vote(&[s, s, s], TiePolicy::No), s);
    }

    #[test]
    fn two_of_three_wins() {
        let votes = [
            set(&[Indicator::Powerline]),
            set(&[Indicator::Powerline, Indicator::Streetlight]),
            set(&[]),
        ];
        let v = majority_vote(&votes, TiePolicy::No);
        assert!(v.contains(Indicator::Powerline));
        assert!(!v.contains(Indicator::Streetlight));
    }

    #[test]
    fn tie_policy_decides_even_splits() {
        let votes = [set(&[Indicator::Sidewalk]), set(&[])];
        assert!(!majority_vote(&votes, TiePolicy::No).contains(Indicator::Sidewalk));
        assert!(majority_vote(&votes, TiePolicy::Yes).contains(Indicator::Sidewalk));
    }

    #[test]
    #[should_panic(expected = "at least one voter")]
    fn empty_votes_panic() {
        let _ = majority_vote(&[], TiePolicy::No);
    }

    #[test]
    fn agreement_is_majority_fraction() {
        let votes = [
            set(&[Indicator::Sidewalk]),
            set(&[Indicator::Sidewalk]),
            set(&[]),
        ];
        let a = agreement(&votes);
        assert!((a[Indicator::Sidewalk] - 2.0 / 3.0).abs() < 1e-12);
        assert!((a[Indicator::Powerline] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_voter_is_identity() {
        let s = set(&[Indicator::MultilaneRoad]);
        assert_eq!(majority_vote(&[s], TiePolicy::No), s);
    }
}
