//! Majority voting across models (the paper's Sec. IV-C2 ensemble).

use nbhd_types::{Indicator, IndicatorSet};

/// Tie-break policy when exactly half the voters say yes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TiePolicy {
    /// Ties resolve to "absent" (conservative; the default).
    #[default]
    No,
    /// Ties resolve to "present".
    Yes,
}

/// Majority-votes per-indicator presence across model answers.
///
/// The paper votes the top three LLMs and accepts a prediction "when at
/// least two models agree"; with an odd voter count ties cannot occur.
///
/// # Panics
///
/// Panics when `votes` is empty.
///
/// # Examples
///
/// ```
/// use nbhd_eval::{majority_vote, TiePolicy};
/// use nbhd_types::{Indicator, IndicatorSet};
///
/// let gemini = IndicatorSet::new().with(Indicator::Sidewalk).with(Indicator::Powerline);
/// let claude = IndicatorSet::new().with(Indicator::Sidewalk);
/// let grok   = IndicatorSet::new().with(Indicator::Powerline);
/// let voted = majority_vote(&[gemini, claude, grok], TiePolicy::No);
/// assert!(voted.contains(Indicator::Sidewalk));   // 2 of 3
/// assert!(voted.contains(Indicator::Powerline));  // 2 of 3
/// assert_eq!(voted.len(), 2);
/// ```
pub fn majority_vote(votes: &[IndicatorSet], ties: TiePolicy) -> IndicatorSet {
    assert!(
        !votes.is_empty(),
        "majority vote requires at least one voter"
    );
    let mut out = IndicatorSet::new();
    let n = votes.len();
    for ind in Indicator::ALL {
        let yes = votes.iter().filter(|v| v.contains(ind)).count();
        let present = match (2 * yes).cmp(&n) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => ties == TiePolicy::Yes,
        };
        out.set(ind, present);
    }
    out
}

/// How a degraded ensemble votes when some members failed to answer.
///
/// The legacy convention — counting a failed model as an empty
/// [`IndicatorSet`] — silently converts outages into "absent" votes and
/// drags recall down. A quorum policy instead votes over the models that
/// actually responded, provided enough of them did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumPolicy {
    /// Minimum responders required to hold a vote at all. Below this the
    /// vote falls back to the best single responder.
    pub min_quorum: usize,
    /// Tie-break when `ranked_tie_break` is off and the responders split
    /// evenly.
    pub ties: TiePolicy,
    /// With an even split, side with the first responder in preference
    /// order (voters are listed best-model-first) instead of a blanket
    /// yes/no policy.
    pub ranked_tie_break: bool,
}

impl Default for QuorumPolicy {
    fn default() -> Self {
        QuorumPolicy {
            min_quorum: 2,
            ties: TiePolicy::No,
            ranked_tie_break: true,
        }
    }
}

/// What kind of vote actually happened for one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteFallback {
    /// Every voter responded: the ordinary full-panel majority.
    FullPanel,
    /// A strict subset responded, but enough for a quorum.
    DegradedQuorum {
        /// How many voters responded.
        responders: usize,
    },
    /// Below quorum: the answer is the best single responder's, verbatim.
    BestSingle {
        /// Index (in preference order) of the responder used.
        voter: usize,
    },
    /// Nobody responded; the answer is empty.
    NoResponders,
}

/// Per-image record of who voted and how the result was reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteProvenance {
    /// Indices (in the input order) of voters whose answers were counted.
    pub responders: Vec<usize>,
    /// Indices of voters that failed and were excluded.
    pub skipped: Vec<usize>,
    /// How the final answer was produced.
    pub fallback: VoteFallback,
}

impl VoteProvenance {
    /// Whether the image got a full, healthy panel.
    pub fn is_full_panel(&self) -> bool {
        self.fallback == VoteFallback::FullPanel
    }
}

/// Votes per-indicator presence over the voters that responded, in
/// preference order (best model first).
///
/// - all respond ⇒ ordinary majority ([`VoteFallback::FullPanel`]);
/// - at least [`QuorumPolicy::min_quorum`] respond ⇒ majority over the
///   responders ([`VoteFallback::DegradedQuorum`]), with even splits
///   resolved by the first responder when
///   [`QuorumPolicy::ranked_tie_break`] is set;
/// - below quorum ⇒ the first responder's answer verbatim
///   ([`VoteFallback::BestSingle`]);
/// - nobody ⇒ an empty set ([`VoteFallback::NoResponders`]).
///
/// # Examples
///
/// ```
/// use nbhd_eval::{quorum_vote, QuorumPolicy, VoteFallback};
/// use nbhd_types::{Indicator, IndicatorSet};
///
/// let gemini = IndicatorSet::new().with(Indicator::Sidewalk);
/// let claude = IndicatorSet::new().with(Indicator::Sidewalk).with(Indicator::Powerline);
/// // grok is down: with the legacy empty-set convention Sidewalk would
/// // lose its 2-of-3 majority; the quorum vote keeps it.
/// let (voted, prov) = quorum_vote(&[Some(gemini), Some(claude), None], &QuorumPolicy::default());
/// assert!(voted.contains(Indicator::Sidewalk));
/// assert_eq!(prov.fallback, VoteFallback::DegradedQuorum { responders: 2 });
/// assert_eq!(prov.skipped, vec![2]);
/// ```
pub fn quorum_vote(
    votes: &[Option<IndicatorSet>],
    policy: &QuorumPolicy,
) -> (IndicatorSet, VoteProvenance) {
    let responders: Vec<usize> = (0..votes.len()).filter(|&i| votes[i].is_some()).collect();
    let skipped: Vec<usize> = (0..votes.len()).filter(|&i| votes[i].is_none()).collect();
    if responders.is_empty() {
        return (
            IndicatorSet::new(),
            VoteProvenance {
                responders,
                skipped,
                fallback: VoteFallback::NoResponders,
            },
        );
    }
    if responders.len() < policy.min_quorum.max(1) {
        let voter = responders[0];
        let answer = votes[voter].expect("responder has an answer");
        return (
            answer,
            VoteProvenance {
                responders,
                skipped,
                fallback: VoteFallback::BestSingle { voter },
            },
        );
    }
    let panel: Vec<IndicatorSet> = responders
        .iter()
        .map(|&i| votes[i].expect("responder has an answer"))
        .collect();
    let n = panel.len();
    let mut out = IndicatorSet::new();
    for ind in Indicator::ALL {
        let yes = panel.iter().filter(|v| v.contains(ind)).count();
        let present = match (2 * yes).cmp(&n) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => {
                if policy.ranked_tie_break {
                    panel[0].contains(ind)
                } else {
                    policy.ties == TiePolicy::Yes
                }
            }
        };
        out.set(ind, present);
    }
    let fallback = if skipped.is_empty() {
        VoteFallback::FullPanel
    } else {
        VoteFallback::DegradedQuorum {
            responders: responders.len(),
        }
    };
    (
        out,
        VoteProvenance {
            responders,
            skipped,
            fallback,
        },
    )
}

/// Per-indicator agreement level: the fraction of voters agreeing with the
/// majority answer, in `[0.5, 1.0]`.
pub fn agreement(votes: &[IndicatorSet]) -> nbhd_types::IndicatorMap<f64> {
    assert!(!votes.is_empty(), "agreement requires at least one voter");
    let n = votes.len() as f64;
    nbhd_types::IndicatorMap::from_fn(|ind| {
        let yes = votes.iter().filter(|v| v.contains(ind)).count() as f64;
        (yes / n).max(1.0 - yes / n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(inds: &[Indicator]) -> IndicatorSet {
        inds.iter().copied().collect()
    }

    #[test]
    fn unanimous_vote_passes_through() {
        let s = set(&[Indicator::Apartment, Indicator::Sidewalk]);
        assert_eq!(majority_vote(&[s, s, s], TiePolicy::No), s);
    }

    #[test]
    fn two_of_three_wins() {
        let votes = [
            set(&[Indicator::Powerline]),
            set(&[Indicator::Powerline, Indicator::Streetlight]),
            set(&[]),
        ];
        let v = majority_vote(&votes, TiePolicy::No);
        assert!(v.contains(Indicator::Powerline));
        assert!(!v.contains(Indicator::Streetlight));
    }

    #[test]
    fn tie_policy_decides_even_splits() {
        let votes = [set(&[Indicator::Sidewalk]), set(&[])];
        assert!(!majority_vote(&votes, TiePolicy::No).contains(Indicator::Sidewalk));
        assert!(majority_vote(&votes, TiePolicy::Yes).contains(Indicator::Sidewalk));
    }

    #[test]
    #[should_panic(expected = "at least one voter")]
    fn empty_votes_panic() {
        let _ = majority_vote(&[], TiePolicy::No);
    }

    #[test]
    fn agreement_is_majority_fraction() {
        let votes = [
            set(&[Indicator::Sidewalk]),
            set(&[Indicator::Sidewalk]),
            set(&[]),
        ];
        let a = agreement(&votes);
        assert!((a[Indicator::Sidewalk] - 2.0 / 3.0).abs() < 1e-12);
        assert!((a[Indicator::Powerline] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_voter_is_identity() {
        let s = set(&[Indicator::MultilaneRoad]);
        assert_eq!(majority_vote(&[s], TiePolicy::No), s);
    }

    #[test]
    fn full_panel_matches_majority_vote() {
        let votes = [
            set(&[Indicator::Powerline]),
            set(&[Indicator::Powerline, Indicator::Streetlight]),
            set(&[]),
        ];
        let wrapped: Vec<Option<IndicatorSet>> = votes.iter().copied().map(Some).collect();
        let (voted, prov) = quorum_vote(&wrapped, &QuorumPolicy::default());
        assert_eq!(voted, majority_vote(&votes, TiePolicy::No));
        assert_eq!(prov.fallback, VoteFallback::FullPanel);
        assert!(prov.is_full_panel());
        assert_eq!(prov.responders, vec![0, 1, 2]);
        assert!(prov.skipped.is_empty());
    }

    #[test]
    fn ranked_tie_break_sides_with_the_best_responder() {
        // two responders split on Sidewalk: the first listed (best) wins
        let votes = [Some(set(&[Indicator::Sidewalk])), None, Some(set(&[]))];
        let (voted, prov) = quorum_vote(&votes, &QuorumPolicy::default());
        assert!(voted.contains(Indicator::Sidewalk));
        assert_eq!(
            prov.fallback,
            VoteFallback::DegradedQuorum { responders: 2 }
        );
        assert_eq!(prov.skipped, vec![1]);
    }

    #[test]
    fn unranked_tie_break_uses_the_tie_policy() {
        let votes = [Some(set(&[Indicator::Sidewalk])), None, Some(set(&[]))];
        let policy = QuorumPolicy {
            ranked_tie_break: false,
            ties: TiePolicy::No,
            ..QuorumPolicy::default()
        };
        let (voted, _) = quorum_vote(&votes, &policy);
        assert!(!voted.contains(Indicator::Sidewalk));
    }

    #[test]
    fn below_quorum_falls_back_to_best_single() {
        let only = set(&[Indicator::Apartment]);
        let votes = [None, Some(only), None];
        let (voted, prov) = quorum_vote(&votes, &QuorumPolicy::default());
        assert_eq!(voted, only);
        assert_eq!(prov.fallback, VoteFallback::BestSingle { voter: 1 });
        assert_eq!(prov.responders, vec![1]);
        assert_eq!(prov.skipped, vec![0, 2]);
    }

    #[test]
    fn no_responders_yields_empty_set() {
        let (voted, prov) = quorum_vote(&[None, None, None], &QuorumPolicy::default());
        assert!(voted.is_empty());
        assert_eq!(prov.fallback, VoteFallback::NoResponders);
        assert_eq!(prov.skipped, vec![0, 1, 2]);
    }

    #[test]
    fn degraded_quorum_beats_legacy_empty_set_on_recall() {
        // one voter down: legacy counts it as an all-absent ballot, which
        // strips anything short of unanimity among the healthy voters
        let healthy_a = set(&[Indicator::Powerline, Indicator::Sidewalk]);
        let healthy_b = set(&[Indicator::Powerline]);
        let legacy = majority_vote(&[healthy_a, healthy_b, set(&[])], TiePolicy::No);
        let (quorum, _) = quorum_vote(
            &[Some(healthy_a), Some(healthy_b), None],
            &QuorumPolicy::default(),
        );
        assert!(quorum.contains(Indicator::Powerline) && legacy.contains(Indicator::Powerline));
        assert!(quorum.contains(Indicator::Sidewalk));
        assert!(
            !legacy.contains(Indicator::Sidewalk),
            "legacy loses the 1-of-2 split"
        );
    }
}
