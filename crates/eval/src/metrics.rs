//! Per-class metric tables over the six indicators.

use nbhd_types::{Indicator, IndicatorMap, IndicatorSet};
use serde::{Deserialize, Serialize};

use crate::BinaryConfusion;

/// One class's metric row, as the paper's tables report it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Accuracy.
    pub accuracy: f64,
}

impl From<&BinaryConfusion> for ClassMetrics {
    fn from(c: &BinaryConfusion) -> Self {
        ClassMetrics {
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            accuracy: c.accuracy(),
        }
    }
}

/// Accumulates per-class presence predictions against ground truth, the
/// evaluation the paper applies to every LLM (Tables III–VI).
///
/// ```
/// use nbhd_eval::PresenceEvaluator;
/// use nbhd_types::{Indicator, IndicatorSet};
///
/// let mut eval = PresenceEvaluator::new();
/// let truth = IndicatorSet::new().with(Indicator::Sidewalk);
/// let pred = IndicatorSet::new().with(Indicator::Sidewalk).with(Indicator::Powerline);
/// eval.observe(truth, pred);
/// let table = eval.table();
/// assert_eq!(table.per_class[Indicator::Sidewalk].recall, 1.0);
/// assert_eq!(table.per_class[Indicator::Powerline].precision, 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PresenceEvaluator {
    confusions: IndicatorMap<BinaryConfusion>,
    images: u64,
}

impl PresenceEvaluator {
    /// Creates an empty evaluator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one image's ground truth vs. predicted presence sets.
    pub fn observe(&mut self, truth: IndicatorSet, predicted: IndicatorSet) {
        for ind in Indicator::ALL {
            self.confusions[ind].observe(truth.contains(ind), predicted.contains(ind));
        }
        self.images += 1;
    }

    /// Number of images observed.
    pub fn images(&self) -> u64 {
        self.images
    }

    /// The raw per-class confusions.
    pub fn confusions(&self) -> &IndicatorMap<BinaryConfusion> {
        &self.confusions
    }

    /// Produces the per-class metric table plus macro averages.
    pub fn table(&self) -> MetricsTable {
        let per_class = self.confusions.map(|_, c| ClassMetrics::from(c));
        MetricsTable::from_per_class(per_class)
    }

    /// Merges another evaluator's counts.
    pub fn merge(&mut self, other: &PresenceEvaluator) {
        for ind in Indicator::ALL {
            self.confusions[ind].merge(&other.confusions[ind]);
        }
        self.images += other.images;
    }
}

/// A per-class metric table plus its macro average row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsTable {
    /// Per-class rows.
    pub per_class: IndicatorMap<ClassMetrics>,
    /// Unweighted average across the six classes.
    pub average: ClassMetrics,
}

impl MetricsTable {
    /// Builds the table, deriving the macro-average row.
    pub fn from_per_class(per_class: IndicatorMap<ClassMetrics>) -> MetricsTable {
        let n = Indicator::COUNT as f64;
        let sum = |f: fn(&ClassMetrics) -> f64| per_class.values().map(f).sum::<f64>() / n;
        MetricsTable {
            per_class,
            average: ClassMetrics {
                precision: sum(|m| m.precision),
                recall: sum(|m| m.recall),
                f1: sum(|m| m.f1),
                accuracy: sum(|m| m.accuracy),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_perfect_metrics() {
        let mut e = PresenceEvaluator::new();
        let sets = [
            IndicatorSet::new().with(Indicator::Sidewalk),
            IndicatorSet::new()
                .with(Indicator::Powerline)
                .with(Indicator::Apartment),
            IndicatorSet::new(),
        ];
        for s in sets {
            e.observe(s, s);
        }
        let t = table_with_positives(&e);
        assert!((t.average.accuracy - 1.0).abs() < 1e-12);
        assert_eq!(e.images(), 3);
    }

    /// Classes with zero positives have undefined precision/recall (0 here),
    /// so restrict perfect-score assertions to observed classes.
    fn table_with_positives(e: &PresenceEvaluator) -> MetricsTable {
        let t = e.table();
        for (ind, c) in e.confusions().iter() {
            if c.tp + c.fn_ > 0 {
                assert!((t.per_class[ind].recall - 1.0).abs() < 1e-12, "{ind}");
            }
        }
        t
    }

    #[test]
    fn always_yes_has_high_recall_low_precision_for_rare_classes() {
        let mut e = PresenceEvaluator::new();
        // apartment present in 1 of 10 images; model always says yes
        for i in 0..10 {
            let truth = if i == 0 {
                IndicatorSet::new().with(Indicator::Apartment)
            } else {
                IndicatorSet::new()
            };
            e.observe(truth, IndicatorSet::new().with(Indicator::Apartment));
        }
        let m = e.table().per_class[Indicator::Apartment];
        assert_eq!(m.recall, 1.0);
        assert!((m.precision - 0.1).abs() < 1e-12);
        assert!((m.accuracy - 0.1).abs() < 1e-12);
    }

    #[test]
    fn macro_average_is_unweighted_mean() {
        let mut per_class = IndicatorMap::fill(ClassMetrics::default());
        per_class[Indicator::Streetlight].f1 = 0.6;
        per_class[Indicator::Sidewalk].f1 = 1.2; // synthetic
        let t = MetricsTable::from_per_class(per_class);
        assert!((t.average.f1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PresenceEvaluator::new();
        let mut b = PresenceEvaluator::new();
        let s = IndicatorSet::new().with(Indicator::Sidewalk);
        a.observe(s, s);
        b.observe(s, IndicatorSet::new());
        a.merge(&b);
        assert_eq!(a.images(), 2);
        let m = a.table().per_class[Indicator::Sidewalk];
        assert!((m.recall - 0.5).abs() < 1e-12);
    }
}
