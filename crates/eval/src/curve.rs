//! Precision-recall curves and average precision.

/// A scored binary prediction: `(score, is_true_positive)`.
pub type ScoredPrediction = (f32, bool);

/// Computes VOC-style average precision from scored predictions and the
/// number of ground-truth positives.
///
/// Predictions are sorted by descending score; precision is interpolated to
/// be monotonically non-increasing (the "all-points" AP used by mAP50).
/// Returns 0 when there are no positives.
///
/// # Examples
///
/// ```
/// use nbhd_eval::average_precision;
/// // three detections, two of them correct, two ground-truth objects
/// let preds = vec![(0.9, true), (0.8, false), (0.7, true)];
/// let ap = average_precision(&preds, 2);
/// // recall points: 0.5 @ p=1.0, 1.0 @ p=2/3
/// assert!((ap - (0.5 * 1.0 + 0.5 * (2.0 / 3.0))).abs() < 1e-6);
/// ```
pub fn average_precision(predictions: &[ScoredPrediction], num_positives: usize) -> f64 {
    if num_positives == 0 {
        return 0.0;
    }
    let mut sorted: Vec<ScoredPrediction> = predictions.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    for (_, correct) in sorted {
        if correct {
            tp += 1;
        } else {
            fp += 1;
        }
        let recall = tp as f64 / num_positives as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        points.push((recall, precision));
    }
    // make precision monotonically non-increasing from the right
    let mut max_p = 0.0f64;
    for p in points.iter_mut().rev() {
        max_p = max_p.max(p.1);
        p.1 = max_p;
    }
    // integrate over recall
    let mut ap = 0.0f64;
    let mut prev_recall = 0.0f64;
    for (r, p) in points {
        if r > prev_recall {
            ap += (r - prev_recall) * p;
            prev_recall = r;
        }
    }
    ap
}

/// Precision and recall at a fixed score threshold.
pub fn precision_recall_at(
    predictions: &[ScoredPrediction],
    num_positives: usize,
    threshold: f32,
) -> (f64, f64) {
    let mut tp = 0usize;
    let mut fp = 0usize;
    for &(score, correct) in predictions {
        if score >= threshold {
            if correct {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if num_positives == 0 {
        0.0
    } else {
        tp as f64 / num_positives as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_ap_one() {
        let preds = vec![(0.9, true), (0.8, true), (0.2, false)];
        assert!((average_precision(&preds, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_wrong_is_ap_zero() {
        let preds = vec![(0.9, false), (0.8, false)];
        assert_eq!(average_precision(&preds, 3), 0.0);
    }

    #[test]
    fn missed_positives_cap_recall() {
        // one correct detection but two positives exist -> AP <= 0.5
        let preds = vec![(0.9, true)];
        let ap = average_precision(&preds, 2);
        assert!((ap - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_positives_gives_zero() {
        assert_eq!(average_precision(&[(0.5, false)], 0), 0.0);
        assert_eq!(average_precision(&[], 0), 0.0);
    }

    #[test]
    fn order_of_input_does_not_matter() {
        let a = vec![(0.9, true), (0.5, false), (0.7, true)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(average_precision(&a, 2), average_precision(&b, 2));
    }

    #[test]
    fn threshold_sweep_trades_precision_for_recall() {
        let preds = vec![(0.9, true), (0.7, true), (0.5, false), (0.3, true)];
        let (p_hi, r_hi) = precision_recall_at(&preds, 3, 0.8);
        let (p_lo, r_lo) = precision_recall_at(&preds, 3, 0.1);
        assert!(p_hi >= p_lo);
        assert!(r_lo >= r_hi);
        assert!((p_hi - 1.0).abs() < 1e-9);
        assert!((r_lo - 1.0).abs() < 1e-9);
    }
}
