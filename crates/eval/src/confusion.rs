//! Binary confusion counts and the derived rates.

use serde::{Deserialize, Serialize};

/// Confusion counts for one binary decision task.
///
/// ```
/// use nbhd_eval::BinaryConfusion;
/// let mut c = BinaryConfusion::default();
/// c.observe(true, true);   // hit
/// c.observe(true, false);  // miss
/// c.observe(false, false); // correct rejection
/// c.observe(false, true);  // false alarm
/// assert_eq!(c.total(), 4);
/// assert!((c.accuracy() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryConfusion {
    /// Creates zeroed counts.
    pub const fn new() -> Self {
        BinaryConfusion {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        }
    }

    /// Records one `(actual, predicted)` observation.
    pub fn observe(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub const fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Positive-class precision; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall (sensitivity, true-positive rate); 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Specificity (true-negative rate); 0 when no negatives exist.
    pub fn specificity(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Merges another confusion's counts into this one.
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinaryConfusion {
        BinaryConfusion {
            tp: 80,
            fp: 20,
            tn: 70,
            fn_: 30,
        }
    }

    #[test]
    fn rates_match_hand_computation() {
        let c = sample();
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 80.0 / 110.0).abs() < 1e-12);
        assert!((c.specificity() - 70.0 / 90.0).abs() < 1e-12);
        assert!((c.accuracy() - 150.0 / 200.0).abs() < 1e-12);
        let p = 0.8;
        let r = 80.0 / 110.0;
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_has_zero_rates() {
        let c = BinaryConfusion::new();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.tp, 160);
        assert_eq!(a.total(), 400);
    }

    #[test]
    fn observe_routes_to_the_right_cell() {
        let mut c = BinaryConfusion::new();
        for _ in 0..3 {
            c.observe(true, true);
        }
        c.observe(false, true);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (3, 1, 0, 0));
    }
}
