//! Surviving bad data: poison quarantine, watchdog timeouts, and honest
//! coverage accounting under kill/resume.
//!
//! ```text
//! cargo run --release --example poison_drill
//! ```
//!
//! Three acts:
//!
//! 1. A survey where some locations are poison — captures panic or produce
//!    corrupt scenes. The supervised runner retries each with backoff,
//!    quarantines the persistent failures, and finishes with a partial
//!    dataset plus a coverage report that says exactly what was lost.
//! 2. A shard whose every capture stalls. The virtual-time watchdog demotes
//!    it to timed-out, keeps everything captured before the deadline, and
//!    the skipped tail is listed — never silently dropped.
//! 3. The same poisoned run, journaled, killed mid-flight, and resumed:
//!    quarantine decisions replay from the journal without re-executing a
//!    single poisoned capture, and the final coverage report is
//!    byte-identical to an uninterrupted run.
//!
//! The run is observed: quarantine counters, shard-outcome counters, and
//! the coverage gauge land in `target/poison_drill_artifact.json` (override
//! with `NBHD_ARTIFACT` — `scripts/bench_artifact.sh` self-diffs two runs
//! to pin the failure-handling surface).

use std::fs;
use std::path::Path;
use std::sync::Arc;

use nbhd::eval::render_coverage_table;
use nbhd::journal::{journal_path, scan_file, verify_file};
use nbhd::prelude::*;
use nbhd_core::{
    COVERAGE_FRACTION_GAUGE, QUARANTINE_COUNT_METRIC, QUARANTINE_RECORD_KIND,
    QUARANTINE_RETRY_METRIC,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Poisoned locations: retries, quarantine, honest partial coverage.
    let obs = Obs::default();
    let config = SurveyConfig {
        locations: 24,
        ..SurveyConfig::smoke(2027)
    };
    let plan = ShardPlan::new(3).unwrap();
    let poison = PoisonSchedule::new(config.seed)
        .with_panic_rate(0.2)
        .with_corrupt_rate(0.2);
    let outcome = run_supervised(
        &config,
        plan,
        SupervisePolicy::default(),
        Some(poison),
        None,
        Some(&obs),
    )?;
    let report = outcome.survey().coverage().expect("coverage report").clone();
    println!(
        "poisoned survey: {} of {} locations completed ({:.1}% coverage), \
         {} quarantined after {} retries",
        report.completed_locations(),
        report.planned_locations(),
        report.fraction() * 100.0,
        report.quarantined_count(),
        report.retries(),
    );
    for (cause, count) in report.cause_counts() {
        println!("  cause {cause}: {count} locations");
    }
    println!();
    print!("{}", render_coverage_table("Per-shard coverage", &report.rows()));
    println!();
    print!(
        "{}",
        render_coverage_table("Per-region coverage", &report.region_rows())
    );
    let summary = obs.summary();
    println!(
        "\nmetrics: {QUARANTINE_COUNT_METRIC} = {}, {QUARANTINE_RETRY_METRIC} = {}, \
         {COVERAGE_FRACTION_GAUGE} = {:.3}",
        summary.metrics.counters[QUARANTINE_COUNT_METRIC],
        summary.metrics.counters[QUARANTINE_RETRY_METRIC],
        summary.metrics.gauges[COVERAGE_FRACTION_GAUGE],
    );

    // 2. A stuck shard: every capture stalls, the watchdog fires, and the
    //    partial work survives.
    let stuck_cfg = SurveyConfig {
        locations: 12,
        ..SurveyConfig::smoke(2028)
    };
    let stalls = PoisonSchedule::new(stuck_cfg.seed).with_stalls(1.0, 1_000);
    let policy = SupervisePolicy {
        shard_deadline_ms: Some(2_500),
        batch_locations: 2,
        ..SupervisePolicy::default()
    };
    let stuck = run_supervised(&stuck_cfg, ShardPlan::one(), policy, Some(stalls), None, None)?;
    let stuck_report = stuck.survey().coverage().expect("coverage report");
    println!(
        "\nstuck shard: watchdog fired after 2500 virtual ms — {} locations \
         captured, {} skipped, {} images preserved",
        stuck_report.completed_locations(),
        stuck_report.skipped_count(),
        stuck.survey().images().len(),
    );
    print!(
        "{}",
        render_coverage_table("Watchdog demotion", &stuck_report.rows())
    );

    // 3. Kill mid-run, resume, and replay quarantine from the journal.
    let manifest = RunManifest::for_config("poison-drill", &config)?;
    let ref_dir = std::env::temp_dir().join("nbhd-poison-drill-ref");
    let kill_dir = std::env::temp_dir().join("nbhd-poison-drill-kill");
    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&kill_dir);

    let journal = Journal::create(&ref_dir, &manifest)?;
    let uninterrupted = run_supervised(
        &config,
        plan,
        SupervisePolicy::default(),
        Some(poison),
        Some(Arc::new(journal)),
        None,
    )?;
    let total_records = scan_file(&journal_path(&ref_dir))?.records.len() as u64;

    let journal = Journal::create(&kill_dir, &manifest)?.with_kill(KillSchedule::at(total_records / 3));
    let interrupted = run_supervised(
        &config,
        plan,
        SupervisePolicy::default(),
        Some(poison),
        Some(Arc::new(journal)),
        None,
    );
    assert!(interrupted.is_err(), "the kill must interrupt the run");
    println!(
        "\nkilled the journaled run at record {} of {total_records}; resuming...",
        total_records / 3
    );

    let journal = Journal::open(&kill_dir, &manifest)?;
    println!(
        "journal restored {} records ({} quarantine decisions replay, 0 re-executions)",
        journal.restored_records(),
        scan_file(&journal_path(&kill_dir))?
            .records
            .iter()
            .filter(|r| r.kind == QUARANTINE_RECORD_KIND)
            .count(),
    );
    let resumed = run_supervised(
        &config,
        plan,
        SupervisePolicy::default(),
        Some(poison),
        Some(Arc::new(journal)),
        None,
    )?;
    assert_eq!(
        serde_json::to_vec(resumed.survey().coverage().unwrap())?,
        serde_json::to_vec(uninterrupted.survey().coverage().unwrap())?,
        "resumed coverage must be byte-identical"
    );
    assert_eq!(resumed.survey().dataset(), uninterrupted.survey().dataset());
    assert_eq!(
        serde_json::to_vec(resumed.survey().coverage().unwrap())?,
        serde_json::to_vec(&report)?,
        "journaled and unjournaled runs must agree on coverage"
    );
    println!("resumed run matches the uninterrupted run byte for byte");

    // deep-scan the resumed journal: every frame re-checksummed
    let audit = verify_file(&journal_path(&kill_dir))?;
    println!(
        "journal_fsck: {} records, {} bytes, clean = {}",
        audit.records,
        audit.file_len,
        audit.is_clean()
    );
    assert!(audit.is_clean());
    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&kill_dir).ok();

    // 4. Export the flight-recorder artifact for later diffing.
    let artifact = RunArtifact::from_obs("poison_drill", &obs);
    let path = std::env::var("NBHD_ARTIFACT")
        .unwrap_or_else(|_| "target/poison_drill_artifact.json".to_string());
    artifact.write_file(Path::new(&path))?;
    println!("\nrun artifact written to {path}");
    Ok(())
}
