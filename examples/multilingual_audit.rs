//! Multilingual prompt audit: how prompt language changes what the model
//! finds — including the paper's catastrophic failures (Chinese sidewalks,
//! Spanish single-lane roads) — and how few-shot adaptation can narrow the
//! gap.
//!
//! ```text
//! cargo run --release --example multilingual_audit
//! ```

use nbhd::prelude::*;
use nbhd::prompt::parse_response;
use nbhd::vlm::{adapt_profile, gemini_15_pro};

fn recall_by_class(
    survey: &SurveyDataset,
    model: &VisionModel,
    language: Language,
) -> Result<(nbhd::eval::MetricsTable, usize), nbhd::types::Error> {
    let prompt = Prompt::build(language, PromptMode::Parallel);
    let mut eval = PresenceEvaluator::new();
    let mut examples = 0usize;
    for &id in survey.images() {
        let ctx = survey.context(id)?;
        let texts = model.respond(&ctx, &prompt, &SamplerParams::default());
        let parsed = parse_response(&texts[0], language, 6);
        eval.observe(ctx.presence, parsed.to_presence(&prompt.question_order()));
        examples += 1;
    }
    Ok((eval.table(), examples))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SurveyConfig::smoke(55);
    config.locations = 100;
    let survey = SurveyPipeline::new(config).run()?;
    let model = VisionModel::new(gemini_15_pro(), survey.config().seed);

    println!("Gemini 1.5 Pro recall by prompt language:\n");
    println!(
        "{:<10} {:>10} {:>12} {:>14}",
        "language", "avg recall", "SW recall", "SR recall"
    );
    for language in [
        Language::English,
        Language::Bengali,
        Language::Spanish,
        Language::Chinese,
    ] {
        let (table, _) = recall_by_class(&survey, &model, language)?;
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>14.3}",
            language.to_string(),
            table.average.recall,
            table.per_class[Indicator::Sidewalk].recall,
            table.per_class[Indicator::SingleLaneRoad].recall,
        );
    }

    // Few-shot adaptation: collect Chinese-prompt mistakes on a calibration
    // slice, adapt the profile, and re-audit.
    println!("\n== few-shot adaptation on the Chinese prompt gap");
    let prompt = Prompt::build(Language::Chinese, PromptMode::Parallel);
    let calib_ids: Vec<ImageId> = survey.images().iter().take(150).copied().collect();
    let mut examples = Vec::new();
    for &id in &calib_ids {
        let ctx = survey.context(id)?;
        let texts = model.respond(&ctx, &prompt, &SamplerParams::default());
        let predicted =
            parse_response(&texts[0], Language::Chinese, 6).to_presence(&prompt.question_order());
        examples.push((ctx.presence, predicted));
    }
    let adapted_profile = adapt_profile(model.profile(), &examples);
    println!(
        "sidewalk sensitivity: base {:.3} -> adapted {:.3}",
        model.profile().reliability[Indicator::Sidewalk].sensitivity,
        adapted_profile.reliability[Indicator::Sidewalk].sensitivity,
    );
    println!(
        "(adaptation pulls the profile toward the observed behaviour; a\n\
         downstream auditor would now know to distrust zh sidewalk answers)"
    );
    Ok(())
}
