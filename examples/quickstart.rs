//! Quickstart: build a small survey, ask the simulated LLM ensemble about a
//! few street scenes, and compare against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The run is observed end to end: it prints per-model latency percentiles
//! and exports the flight-recorder artifact to
//! `target/quickstart_artifact.json`, diffable against a later run with
//! `cargo run -p nbhd-bench --bin run_diff`.

use std::path::Path;

use nbhd::eval::render_hist_table;
use nbhd::obs::Histogram;
use nbhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Collect a small survey: two NC-style counties, synthetic street
    //    view imagery, simulated human annotation, 70/20/10 split.
    let survey = SurveyPipeline::new(SurveyConfig::smoke(2025)).run()?;
    println!("survey: {}", survey.dataset().summary());

    // 2. Ask the paper's four models about the first ten images using the
    //    paper's English parallel prompt, and majority-vote the top three.
    //    The observability bundle records spans, counters, and latency
    //    histograms as the ensemble works.
    let obs = Obs::default();
    let ids: Vec<ImageId> = survey.images().iter().take(10).copied().collect();
    let outcome = run_llm_survey_observed(
        &survey,
        paper_lineup(),
        &ids,
        &LlmSurveyConfig::default(),
        &obs,
    )?;

    println!("\nimage            ground truth      majority vote");
    for (i, &id) in ids.iter().enumerate() {
        println!(
            "{:<16} {:<17} {}",
            id.to_string(),
            outcome.truth[i].to_string(),
            outcome.ensemble.voted[i]
        );
    }

    // 3. How well does each model do, and what did the calls cost?
    println!("\nper-model accuracy over {} images:", ids.len());
    for (name, table) in &outcome.tables {
        println!("  {:<18} {:.3}", name, table.average.accuracy);
    }
    println!(
        "majority vote accuracy: {:.3}",
        outcome.voted_table.average.accuracy
    );
    println!("\nsimulated API spend: ${:.4}", outcome.total_usd);

    // 4. What did the transport layer look like? Per-model request latency
    //    percentiles, straight from the run's deterministic histograms.
    let snapshot = obs.registry().snapshot();
    let rows: Vec<(String, Histogram)> = outcome
        .tables
        .keys()
        .filter_map(|name| {
            let hist = snapshot
                .histograms
                .get(&format!("client.{name}.latency_ms"))?;
            Some((name.clone(), hist.clone()))
        })
        .collect();
    println!(
        "\n{}",
        render_hist_table("per-model request latency (ms)", &rows)
    );

    // 5. Export the flight-recorder artifact for later comparison.
    let artifact = RunArtifact::from_obs("quickstart", &obs);
    let path = Path::new("target/quickstart_artifact.json");
    artifact.write_file(path)?;
    println!("run artifact written to {}", path.display());
    Ok(())
}
