//! Quickstart: build a small survey, ask the simulated LLM ensemble about a
//! few street scenes, and compare against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nbhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Collect a small survey: two NC-style counties, synthetic street
    //    view imagery, simulated human annotation, 70/20/10 split.
    let survey = SurveyPipeline::new(SurveyConfig::smoke(2025)).run()?;
    println!("survey: {}", survey.dataset().summary());

    // 2. Ask the paper's four models about the first ten images using the
    //    paper's English parallel prompt, and majority-vote the top three.
    let ids: Vec<ImageId> = survey.images().iter().take(10).copied().collect();
    let outcome = run_llm_survey(&survey, paper_lineup(), &ids, &LlmSurveyConfig::default())?;

    println!("\nimage            ground truth      majority vote");
    for (i, &id) in ids.iter().enumerate() {
        println!(
            "{:<16} {:<17} {}",
            id.to_string(),
            outcome.truth[i].to_string(),
            outcome.ensemble.voted[i]
        );
    }

    // 3. How well does each model do, and what did the calls cost?
    println!("\nper-model accuracy over {} images:", ids.len());
    for (name, table) in &outcome.tables {
        println!("  {:<18} {:.3}", name, table.average.accuracy);
    }
    println!(
        "majority vote accuracy: {:.3}",
        outcome.voted_table.average.accuracy
    );
    println!("\nsimulated API spend: ${:.4}", outcome.total_usd);
    Ok(())
}
