//! Streaming sharded surveys: bounded-memory collection over many regions,
//! byte-identical to the eager pipeline, plus a cross-region transfer table.
//!
//! ```text
//! cargo run --release --example region_shards
//! ```
//!
//! Three acts:
//!
//! 1. The paper's two-county study pair, run unsharded and as two shards —
//!    the merged dataset and the fee fold are byte-identical.
//! 2. Eight synthetic regions streamed through eight shards — peak resident
//!    scenes stay bounded by the largest shard, not the whole survey.
//! 3. A detector trained on the study pair, evaluated in-domain and on a
//!    synthetic region it never saw, rendered as a transfer table.
//!
//! The sharded run is observed: shard wall-times and the peak-resident
//! gauge land in `target/region_shards_artifact.json` (override the path
//! with `NBHD_ARTIFACT` — `scripts/bench_artifact.sh` self-diffs two runs
//! to gate the shard surface for drift).

use std::path::Path;

use nbhd::eval::render_transfer_table;
use nbhd::prelude::*;
use nbhd_core::{run_sharded, run_transfer, SHARD_PEAK_GAUGE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Byte-equality on the study pair: sharded(2) vs the eager pipeline.
    let config = SurveyConfig::smoke(2026);
    let eager = SurveyPipeline::new(config.clone()).run()?;
    let sharded = run_sharded(&config, ShardPlan::new(2).unwrap(), None, None)?;
    assert_eq!(sharded.survey().dataset(), eager.dataset());
    assert_eq!(
        sharded.fees_usd().to_bits(),
        eager.imagery_usage().fees_usd.to_bits()
    );
    println!(
        "study pair: {} images, sharded(2) == unsharded, fees ${:.3} (bit-exact)",
        eager.images().len(),
        sharded.fees_usd()
    );

    // 2. Eight regions, eight shards, bounded peak-resident scenes.
    let obs = Obs::default();
    let wide = SurveyConfig {
        locations: 48,
        ..SurveyConfig::smoke(2026)
    }
    .with_regions(RegionSet::synthetic_grid(8, 2026));
    let outcome = run_sharded(&wide, ShardPlan::new(8).unwrap(), None, Some(&obs))?;
    let total = outcome.survey().images().len();
    let largest = *outcome.shard_images().iter().max().unwrap();
    println!(
        "\n8 regions / 8 shards: {total} images total, largest shard {largest}, \
         peak resident {} scenes ({}% of the eager footprint)",
        outcome.peak_resident_scenes(),
        outcome.peak_resident_scenes() * 100 / total.max(1)
    );
    assert!(outcome.peak_resident_scenes() <= largest);
    let summary = obs.summary();
    println!(
        "gauge {SHARD_PEAK_GAUGE} = {}",
        summary.metrics.gauges[SHARD_PEAK_GAUGE]
    );

    // 3. Cross-region transfer: train on the study pair, test on a region
    //    set the detector never saw.
    let target = SurveyConfig::smoke(2026).with_regions(RegionSet::synthetic_grid(2, 2026));
    let transfer = run_transfer(
        &config,
        &target,
        TrainConfig {
            epochs: 3,
            hard_negative_rounds: 1,
            ..TrainConfig::default()
        },
        DetectorConfig {
            shrink: 4,
            ..DetectorConfig::default()
        },
        ShardPlan::new(2).unwrap(),
    )?;
    println!(
        "\n{}",
        render_transfer_table("cross-region transfer (mAP50)", &transfer.rows())
    );
    println!(
        "mAP50 retained under transfer: {:.1}%",
        transfer.retention() * 100.0
    );

    // 4. Export the flight-recorder artifact for later diffing.
    let artifact = RunArtifact::from_obs("region_shards", &obs);
    let path = std::env::var("NBHD_ARTIFACT")
        .unwrap_or_else(|_| "target/region_shards_artifact.json".to_string());
    artifact.write_file(Path::new(&path))?;
    println!("\nrun artifact written to {path}");
    Ok(())
}
