//! Crash-safe survey runs: start a journaled run, optionally crash it
//! partway through, and resume it from the same run directory.
//!
//! ```text
//! cargo run --release --example crash_resume -- ./my-run --kill 25
//! cargo run --release --example crash_resume -- ./my-run            # resumes
//! ```
//!
//! The first command journals every completed unit (scene fees, captures,
//! detector harvests, LLM votes, bootstrap resamples) into `./my-run` and
//! dies after 25 appends, leaving a half-written frame behind — the mess a
//! real power cut makes. The second command validates the run manifest,
//! truncates the torn tail, replays the surviving records, and finishes the
//! run with a report byte-identical to one that never crashed. No scene fee
//! is ever paid twice.

use std::path::PathBuf;
use std::sync::Arc;

use nbhd::eval::render_run_summary;
use nbhd::journal::{journal_path, manifest_path, scan_file, Journal, KillSchedule};
use nbhd::obs::{Obs, RunArtifact};
use nbhd::{run_observed, RunPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let dir = PathBuf::from(args.next().unwrap_or_else(|| "nbhd-run".to_owned()));
    let kill: Option<u64> = match (args.next(), args.next()) {
        (Some(flag), Some(n)) if flag == "--kill" => Some(n.parse()?),
        (None, _) => None,
        _ => {
            eprintln!("usage: crash_resume <run-dir> [--kill <appends>]");
            std::process::exit(2);
        }
    };

    // The plan is the run's identity: its hash is stamped into the run
    // directory's manifest, and resuming under a different plan is refused.
    let plan = RunPlan::smoke(2025);
    let manifest = plan.manifest("crash-resume-demo")?;

    let resuming = manifest_path(&dir).exists();
    let journal = Journal::open_or_create(&dir, &manifest)?;
    if resuming {
        print!(
            "resuming {} with {} journaled records",
            dir.display(),
            journal.restored_records()
        );
        match journal.recovery_note() {
            Some(note) => println!(" (recovered from a crash: {note})"),
            None => println!(" (clean journal)"),
        }
    } else {
        println!("starting a fresh run in {}", dir.display());
    }

    let journal = match kill {
        Some(n) => {
            println!("simulated crash armed: dying after {n} more appends (torn write included)");
            journal.with_kill(KillSchedule::torn(n, 7))
        }
        None => journal,
    };

    let obs = Obs::default();
    match run_observed(&plan, Arc::new(journal), &obs) {
        Ok(report) => {
            println!("run complete:");
            println!("  images labeled : {}", report.dataset_json.lines().count());
            println!("  voted accuracy : {:.3}", report.voted_accuracy);
            println!(
                "  {:.0}% CI        : [{:.3}, {:.3}]",
                plan.level * 100.0,
                report.ci_lo,
                report.ci_hi
            );
            println!(
                "  imagery billed : {} scenes, ${:.3}",
                report.billed_images, report.fees_usd
            );
            println!("rerun with the same directory: everything replays, nothing is re-billed.");
            println!("\n{}", render_run_summary("Run summary", &obs.summary()));

            // Flight-recorder artifact: the run's deterministic surface,
            // ready to gate a later run against this one:
            //   cargo run -p nbhd-bench --bin run_diff -- \
            //       <run-dir>/artifact.json <other-run>/artifact.json
            let artifact_path = dir.join("artifact.json");
            RunArtifact::from_obs("crash-resume-demo", &obs).write_file(&artifact_path)?;
            println!("run artifact written to {}", artifact_path.display());
        }
        Err(err) => {
            println!("process died: {err}");
            let scan = scan_file(&journal_path(&dir))?;
            println!(
                "the journal preserved {} completed records; rerun with the same \
                 directory to resume from them.",
                scan.records.len()
            );
        }
    }
    Ok(())
}
