//! Overload drill: three tenants storm the serving layer while the
//! simulated model APIs melt down, and the service degrades instead of
//! collapsing.
//!
//! Run with `cargo run --example overload_drill`. Set `NBHD_ARTIFACT` to a
//! path to also write the run's flight-recorder artifact (used by
//! `scripts/bench_artifact.sh` to gate the serve surface for drift).

use nbhd::client::{BreakerConfig, Parallelism};
use nbhd::eval::render_budget_table;
use nbhd::obs::RunArtifact;
use nbhd::serve::{
    DegradePolicy, ServiceConfig, SloSpec, StormBuilder, SurveyService, TenantConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The storm: a steady tenant, a bursty tenant, a quota-starved slow
    // tenant, a 60% 429 storm across every model, and grok-2 flapping.
    let (workload, schedule) = StormBuilder::new(2024)
        .steady("atlas", 0, 14, 150)
        .burst("blitz", 600, 18)
        .steady("crawl", 0, 8, 400)
        .storm_429(500, 3_500, 0.6, 250)
        .breaker_flap("grok-2", 0, 1_500, 2)
        .build();
    println!("== overload drill ==");
    println!(
        "{} arrivals from 3 tenants, {} fault regimes scripted\n",
        workload.len(),
        schedule.regimes().len()
    );

    let config = ServiceConfig {
        schedule,
        parallelism: Parallelism::fixed(4),
        breaker: BreakerConfig {
            min_samples: 4,
            cooldown_ms: 2_000,
            probe_count: 2,
            ..BreakerConfig::default()
        },
        degrade: DegradePolicy {
            quorum_depth: 10,
            detector_depth: 20,
        },
        global_queue_capacity: 24,
        ..ServiceConfig::default()
    };
    let tenants = vec![
        TenantConfig::new("atlas"),
        TenantConfig::new("blitz")
            .with_quota(10, 4.0)
            .with_queue_capacity(6),
        TenantConfig::new("crawl").with_quota(2, 0.05),
    ];

    let mut service = SurveyService::new(config, tenants);
    let report = service.run(workload)?;

    println!("-- decision log --");
    print!("{}", report.decision_text());

    println!("\n-- tiers --");
    for (tier, count) in report.tier_counts() {
        println!("  {:<10} {count} responses", tier.as_str());
    }

    println!("\n-- rejections --");
    for rejection in &report.rejections {
        println!(
            "  {}#{}: {}",
            rejection.tenant, rejection.request_id, rejection.reason
        );
    }

    println!("\n-- bills --");
    for (tenant, bill) in &report.bills {
        println!(
            "  {tenant:<8} admitted={} served={} rejected={} tokens={}in/{}out spend=${:.4}",
            bill.admitted,
            bill.served,
            bill.rejected,
            bill.input_tokens,
            bill.output_tokens,
            bill.usd
        );
    }

    // Per-tenant SLO verdicts: each tenant's scoped artifact, judged by
    // the budget engine. The storm makes these interesting — blitz's
    // burst overflows its queue and crawl starves on quota, so the drill
    // shows both held and broken objectives.
    println!("\n-- per-tenant SLOs --");
    let slo = SloSpec {
        p99_wait_ceiling_ms: 5_000,
        max_rejection_fraction: 0.35,
        max_degraded_fraction: 0.75,
        max_usd: Some(10.0),
    };
    for tenant in ["atlas", "blitz", "crawl"] {
        let artifact = service
            .tenant_artifact(tenant)
            .expect("tenant ran this drill");
        let verdict = slo.evaluate(tenant, &artifact);
        print!(
            "{}",
            render_budget_table(&format!("SLO: {tenant}"), &verdict)
        );
    }

    println!();
    println!("{}", report.health.render("model health after the storm"));

    if let Ok(path) = std::env::var("NBHD_ARTIFACT") {
        let artifact = RunArtifact::from_obs("overload_drill", service.obs());
        match artifact.write_file(std::path::Path::new(&path)) {
            Ok(()) => println!("artifact written to {path}"),
            Err(err) => eprintln!("artifact write failed: {err}"),
        }
    }
    Ok(())
}
