//! Noise robustness (paper Fig. 3 protocol) for BOTH sides of the study:
//! the trained detector degrades with sensor noise, while the simulated
//! LLM ensemble — which reasons over scene evidence rather than raw pixels
//! in this reproduction — is unaffected, cleanly illustrating what each
//! substrate is sensitive to.
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```

use nbhd::eval::line_chart;
use nbhd::prelude::*;
use nbhd_core::{evaluate_with_noise, train_baseline, AugmentationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SurveyConfig::smoke(909);
    config.locations = 80;
    config.image_size = 160;
    let survey = SurveyPipeline::new(config).run()?;

    let outcome = train_baseline(
        &survey,
        TrainConfig {
            epochs: 10,
            hard_negative_rounds: 1,
            seed: 909,
            ..TrainConfig::default()
        },
        DetectorConfig {
            shrink: 4,
            ..DetectorConfig::default()
        },
        AugmentationPolicy::None,
    )?;
    println!("clean mAP50 = {:.3}\n", outcome.report.map50);

    let mut series = Vec::new();
    println!("{:>6} {:>8} {:>10}", "SNR", "mAP50", "retention");
    for snr in [30.0f32, 25.0, 20.0, 15.0, 10.0, 5.0] {
        let noisy = evaluate_with_noise(&outcome.detector, &survey, snr)?;
        println!(
            "{snr:>4} dB {:>8.3} {:>10.3}",
            noisy.map50,
            noisy.map50 / outcome.report.map50.max(1e-9)
        );
        series.push((f64::from(snr), noisy.map50));
    }
    series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("\nmAP50 vs SNR:\n{}", line_chart(&series, 7, 40));

    println!(
        "The supervised detector pays for every dB lost; the paper reports\n\
         the same cliff (>90% accuracy at 25-30 dB, ~60% at 5 dB) for its\n\
         YOLOv11 baseline — one more operational argument the study makes\n\
         for training-free LLM auditing."
    );
    Ok(())
}
