//! Chaos drill: run the voting ensemble through a scripted fault schedule —
//! a dead model, a correlated brownout, and a rate-limit storm — with
//! circuit breakers and hedging on, then render the per-model health report.
//! Part two kills the journaled drill mid-outage and resumes it from the
//! run directory.
//!
//! ```text
//! cargo run --release --example chaos_drill
//! ```

use std::sync::Arc;

use nbhd::client::{
    BreakerConfig, Ensemble, ExecutorConfig, FaultProfile, FaultRegime, FaultSchedule, HedgePolicy,
    ResilienceConfig,
};
use nbhd::eval::{render_run_summary, VoteFallback};
use nbhd::journal::{Journal, KillSchedule, RunManifest};
use nbhd::obs::Obs;
use nbhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let survey = SurveyPipeline::new(SurveyConfig::smoke(4242)).run()?;
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids)?;

    // The drill script, in virtual time: Grok is down for the first two
    // minutes, Claude drowns in 429s for a stretch, and mid-run every model
    // browns out together (a correlated upstream incident).
    let schedule = FaultSchedule::new()
        .with(FaultRegime::outage(0, 120_000).for_models(&["grok-2"]))
        .with(FaultRegime::rate_limit_storm(30_000, 60_000, 0.5, 800).for_models(&["claude-3.7"]))
        .with(FaultRegime::brownout(60_000, 90_000, 0.25, 2.5));
    println!("chaos schedule ({} regimes):", schedule.regimes().len());
    for regime in schedule.regimes() {
        println!(
            "  [{:>6.1}s, {:>6.1}s) {:?} -> {}",
            regime.start_ms as f64 / 1000.0,
            regime.end_ms as f64 / 1000.0,
            regime.kind,
            regime
                .models
                .as_ref()
                .map_or("all models".to_owned(), |m| m.join(", ")),
        );
    }

    let build_ensemble = || {
        Ensemble::new(
            vec![
                (nbhd::vlm::gemini_15_pro(), true),
                (nbhd::vlm::claude_37(), true),
                (nbhd::vlm::grok_2(), true),
            ],
            survey.config().seed,
            FaultProfile::FLAKY,
            ExecutorConfig {
                hedge: Some(HedgePolicy::after_ms(1_800)),
                ..ExecutorConfig::default()
            },
        )
        .with_resilience(ResilienceConfig {
            breaker: Some(BreakerConfig::default()),
            schedule: schedule.clone(),
            ..ResilienceConfig::default()
        })
    };
    let obs = Obs::default();
    let ensemble = build_ensemble().with_obs(obs.clone());

    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());

    // score the degraded vote against ground truth
    let mut eval = PresenceEvaluator::new();
    for (pred, ctx) in outcome.voted.iter().zip(&contexts) {
        eval.observe(ctx.presence, *pred);
    }
    println!(
        "\nvoted accuracy under chaos: {:.3} over {} images",
        eval.table().average.accuracy,
        contexts.len()
    );

    // how each image's vote was actually held
    let mut full = 0usize;
    let mut degraded = 0usize;
    let mut single = 0usize;
    let mut none = 0usize;
    for prov in &outcome.provenance {
        match prov.fallback {
            VoteFallback::FullPanel => full += 1,
            VoteFallback::DegradedQuorum { .. } => degraded += 1,
            VoteFallback::BestSingle { .. } => single += 1,
            VoteFallback::NoResponders => none += 1,
        }
    }
    println!(
        "vote provenance: {full} full panels, {degraded} degraded quorums, {single} best-single fallbacks, {none} unanswered"
    );

    println!("\n{}", ensemble.health_report().render("Model health"));
    println!("{}", ensemble.meter().report());
    println!(
        "virtual wall-clock: {:.1}s | simulated spend: ${:.3}",
        ensemble.clock().now_ms() as f64 / 1000.0,
        ensemble.meter().total_usd()
    );
    println!("\n{}", render_run_summary("Drill summary", &obs.summary()));

    // ---- part two: kill the drill mid-outage, then resume it ------------
    // The same drill, journaled: the process dies while Grok is still dark
    // and the brownout is raging, then a fresh process resumes from the run
    // directory. Successful votes replay from the journal; transport
    // failures were deliberately NOT journaled, so the resumed run retries
    // them against the (by then healthier) schedule instead of replaying
    // the outage.
    println!("\n=== crash/resume mid-outage ===");
    let dir = std::env::temp_dir().join("nbhd-chaos-drill-run");
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = RunManifest::for_config("chaos-drill", survey.config())?;

    let doomed = Journal::create(&dir, &manifest)?.with_kill(KillSchedule::torn(40, 7));
    let ensemble = build_ensemble().with_checkpoint(Arc::new(doomed));
    match ensemble.try_survey(&contexts, &prompt, &SamplerParams::default()) {
        Ok(_) => println!("kill point was past the end; drill completed in one process"),
        Err(err) => println!("process died mid-survey: {err}"),
    }

    let journal = Journal::open(&dir, &manifest)?;
    print!(
        "resume: {} votes survived the crash",
        journal.restored_records()
    );
    match journal.recovery_note() {
        Some(note) => println!(" ({note})"),
        None => println!(" (clean tail)"),
    }
    let resumed = build_ensemble().with_checkpoint(Arc::new(journal));
    let outcome = resumed.try_survey(&contexts, &prompt, &SamplerParams::default())?;
    for model in ["gemini-1.5-pro", "claude-3.7", "grok-2"] {
        println!(
            "  {model}: {} live API attempts after resume",
            resumed.api_attempts(model).unwrap_or(0)
        );
    }
    let mut eval = PresenceEvaluator::new();
    for (pred, ctx) in outcome.voted.iter().zip(&contexts) {
        eval.observe(ctx.presence, *pred);
    }
    println!(
        "voted accuracy after resume: {:.3} over {} images",
        eval.table().average.accuracy,
        contexts.len()
    );

    // Breaker state is deliberately NOT journaled. A breaker is derived
    // health — a cache of recent failure observations — not ground truth
    // about the run. Replaying a pre-crash "open" breaker would fail fast
    // against an API that recovered while the process was down; the resumed
    // ensemble starts every breaker closed and re-learns each member's
    // health from live traffic within a handful of requests.
    println!("\n{}", resumed.health_report().render("Model health after resume"));
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
