//! Chaos drill: run the voting ensemble through a scripted fault schedule —
//! a dead model, a correlated brownout, and a rate-limit storm — with
//! circuit breakers and hedging on, then render the per-model health report.
//!
//! ```text
//! cargo run --release --example chaos_drill
//! ```

use nbhd::client::{
    BreakerConfig, Ensemble, ExecutorConfig, FaultProfile, FaultRegime, FaultSchedule, HedgePolicy,
    ResilienceConfig,
};
use nbhd::eval::VoteFallback;
use nbhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let survey = SurveyPipeline::new(SurveyConfig::smoke(4242)).run()?;
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids)?;

    // The drill script, in virtual time: Grok is down for the first two
    // minutes, Claude drowns in 429s for a stretch, and mid-run every model
    // browns out together (a correlated upstream incident).
    let schedule = FaultSchedule::new()
        .with(FaultRegime::outage(0, 120_000).for_models(&["grok-2"]))
        .with(FaultRegime::rate_limit_storm(30_000, 60_000, 0.5, 800).for_models(&["claude-3.7"]))
        .with(FaultRegime::brownout(60_000, 90_000, 0.25, 2.5));
    println!("chaos schedule ({} regimes):", schedule.regimes().len());
    for regime in schedule.regimes() {
        println!(
            "  [{:>6.1}s, {:>6.1}s) {:?} -> {}",
            regime.start_ms as f64 / 1000.0,
            regime.end_ms as f64 / 1000.0,
            regime.kind,
            regime
                .models
                .as_ref()
                .map_or("all models".to_owned(), |m| m.join(", ")),
        );
    }

    let ensemble = Ensemble::new(
        vec![
            (nbhd::vlm::gemini_15_pro(), true),
            (nbhd::vlm::claude_37(), true),
            (nbhd::vlm::grok_2(), true),
        ],
        survey.config().seed,
        FaultProfile::FLAKY,
        ExecutorConfig {
            hedge: Some(HedgePolicy::after_ms(1_800)),
            ..ExecutorConfig::default()
        },
    )
    .with_resilience(ResilienceConfig {
        breaker: Some(BreakerConfig::default()),
        schedule,
        ..ResilienceConfig::default()
    });

    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());

    // score the degraded vote against ground truth
    let mut eval = PresenceEvaluator::new();
    for (pred, ctx) in outcome.voted.iter().zip(&contexts) {
        eval.observe(ctx.presence, *pred);
    }
    println!(
        "\nvoted accuracy under chaos: {:.3} over {} images",
        eval.table().average.accuracy,
        contexts.len()
    );

    // how each image's vote was actually held
    let mut full = 0usize;
    let mut degraded = 0usize;
    let mut single = 0usize;
    let mut none = 0usize;
    for prov in &outcome.provenance {
        match prov.fallback {
            VoteFallback::FullPanel => full += 1,
            VoteFallback::DegradedQuorum { .. } => degraded += 1,
            VoteFallback::BestSingle { .. } => single += 1,
            VoteFallback::NoResponders => none += 1,
        }
    }
    println!(
        "vote provenance: {full} full panels, {degraded} degraded quorums, {single} best-single fallbacks, {none} unanswered"
    );

    println!("\n{}", ensemble.health_report().render("Model health"));
    println!("{}", ensemble.meter().report());
    println!(
        "virtual wall-clock: {:.1}s | simulated spend: ${:.3}",
        ensemble.clock().now_ms() as f64 / 1000.0,
        ensemble.meter().total_usd()
    );
    Ok(())
}
