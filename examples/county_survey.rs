//! County survey: the paper's data-collection pass end to end, with class
//! balance, imagery fees, and LabelMe-format annotation export.
//!
//! ```text
//! cargo run --release --example county_survey
//! ```

use nbhd::annotate::LabelMeDoc;
use nbhd::geo::Zoning;
use nbhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized survey across the two study counties.
    let mut config = SurveyConfig::bench(7);
    config.locations = 120;
    let survey = SurveyPipeline::new(config).run()?;

    println!("== dataset");
    println!("{}", survey.dataset().summary());
    let prevalence = survey.dataset().prevalence();
    println!("\nper-image presence prevalence (paper-calibrated targets in parens):");
    let targets = [0.17, 0.34, 0.28, 0.37, 0.24, 0.10];
    for ind in Indicator::ALL {
        println!(
            "  {:<18} {:.3} ({:.2})",
            ind.name(),
            prevalence[ind],
            targets[ind.index()]
        );
    }

    // Zone mix of the sampled ground truth, via the service oracle.
    let mut zone_counts = [0usize; 3];
    for &id in survey.images().iter().step_by(4) {
        let spec = survey.ground_truth(id)?;
        let idx = Zoning::ALL.iter().position(|z| *z == spec.zone).unwrap();
        zone_counts[idx] += 1;
    }
    println!("\nsampled locations by zone: urban {} / suburban {} / rural {}",
        zone_counts[0], zone_counts[1], zone_counts[2]);

    // Fetch one panorama and export its annotations as LabelMe JSON.
    let id = survey.images()[0];
    let labels = survey.dataset().labels(id)?;
    let doc = LabelMeDoc::from_labels(labels, survey.config().image_size);
    println!("\n== LabelMe export for {id}\n{}", doc.to_json()?);

    // Billing: fetch all four headings of the first location.
    for heading in Heading::ALL {
        let _ = survey.image(ImageId::new(id.location, heading))?;
    }
    let usage = survey.imagery_usage();
    println!(
        "\n== imagery service usage\nrequests {} | billed {} | cache hits {} | fees ${:.3}",
        usage.requests, usage.billed_images, usage.cache_hits, usage.fees_usd
    );
    Ok(())
}
