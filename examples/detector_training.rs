//! Detector training: the supervised baseline end to end — train with hard
//! negative mining, evaluate mAP50, stress with Gaussian noise, and save
//! the model to JSON.
//!
//! ```text
//! cargo run --release --example detector_training
//! ```

use nbhd::prelude::*;
use nbhd_core::{evaluate_with_noise, train_baseline, AugmentationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SurveyConfig::smoke(17);
    config.locations = 60;
    config.image_size = 160;
    let survey = SurveyPipeline::new(config).run()?;
    println!("training data: {}", survey.dataset().summary());

    let train = TrainConfig {
        epochs: 10,
        hard_negative_rounds: 1,
        seed: 17,
        ..TrainConfig::default()
    };
    let detector_cfg = DetectorConfig {
        shrink: 4,
        ..DetectorConfig::default()
    };
    let outcome = train_baseline(&survey, train, detector_cfg, AugmentationPolicy::None)?;

    println!("\nper-class AP50 on the test split:");
    for ind in Indicator::ALL {
        println!(
            "  {:<18} {:.3} (threshold {:.2})",
            ind.name(),
            outcome.report.ap50[ind],
            outcome.detector.thresholds[ind]
        );
    }
    println!("mAP50 = {:.3}", outcome.report.map50);

    println!("\nnoise stress (paper Fig. 3 protocol):");
    for snr in [30.0f32, 20.0, 10.0, 5.0] {
        let noisy = evaluate_with_noise(&outcome.detector, &survey, snr)?;
        println!("  SNR {snr:>4} dB -> mAP50 {:.3}", noisy.map50);
    }

    // Detect on one test image and show what the model sees.
    let id = survey.dataset().split().test[0];
    let img = survey.image(id)?;
    let detections = outcome.detector.detect(&img);
    println!("\ndetections on {id} (truth: {}):", survey.ground_truth(id)?.presence());
    for d in detections.iter().take(8) {
        println!(
            "  {:<18} score {:.2} at ({:.0},{:.0}) {:.0}x{:.0}",
            d.indicator.name(),
            d.score,
            d.bbox.x,
            d.bbox.y,
            d.bbox.w,
            d.bbox.h
        );
    }

    // Round-trip the trained model through JSON.
    let json = outcome.detector.to_json()?;
    let restored = Detector::from_json(&json)?;
    assert_eq!(restored, outcome.detector);
    println!("\nmodel serialized to {} KiB of JSON and restored", json.len() / 1024);
    Ok(())
}
