//! LLM ensemble under realistic API conditions: rate limits, transient
//! faults with retries, per-model cost metering, and majority voting.
//!
//! ```text
//! cargo run --release --example llm_ensemble
//! ```

use nbhd::client::{Ensemble, ExecutorConfig, FaultProfile, Parallelism, RetryPolicy};
use nbhd::prelude::*;
use nbhd::vlm::{claude_37, gemini_15_pro, grok_2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let survey = SurveyPipeline::new(SurveyConfig::smoke(99)).run()?;
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids)?;

    // A flaky public API behind a 5 req/s limit, 6 concurrent workers,
    // up to 4 attempts per request with exponential backoff.
    let ensemble = Ensemble::new(
        vec![
            (gemini_15_pro(), true),
            (claude_37(), true),
            (grok_2(), true),
        ],
        survey.config().seed,
        FaultProfile::FLAKY,
        ExecutorConfig {
            parallelism: Parallelism::fixed(6),
            rate_limit: Some((4, 5.0)),
            retry: RetryPolicy::default(),
            seed: 99,
            ..ExecutorConfig::default()
        },
    );

    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());

    // score each model and the vote
    let mut evaluators: Vec<(String, PresenceEvaluator)> = Vec::new();
    for (name, answers) in &outcome.per_model {
        let mut eval = PresenceEvaluator::new();
        for (pred, ctx) in answers.presence.iter().zip(&contexts) {
            eval.observe(ctx.presence, *pred);
        }
        println!(
            "{:<16} accuracy {:.3} | parse failures {} | transport failures {}",
            name,
            eval.table().average.accuracy,
            answers.parse_failures,
            answers.transport_failures
        );
        evaluators.push((name.clone(), eval));
    }
    let mut vote_eval = PresenceEvaluator::new();
    for (pred, ctx) in outcome.voted.iter().zip(&contexts) {
        vote_eval.observe(ctx.presence, *pred);
    }
    println!(
        "{:<16} accuracy {:.3}",
        "majority-vote",
        vote_eval.table().average.accuracy
    );

    println!(
        "\nvirtual wall-clock: {:.1}s for {} images x 3 models",
        ensemble.clock().now_ms() as f64 / 1000.0,
        contexts.len()
    );
    println!("\n{}", ensemble.meter().report());
    println!("total simulated spend: ${:.3}", ensemble.meter().total_usd());
    Ok(())
}
