//! Cross-crate determinism: every parallel code path in the workspace must
//! produce results bit-identical to its serial counterpart, because all
//! randomness is keyed by item identity (per-item seeds) rather than by
//! scheduling order.

use nbhd::prelude::*;
use nbhd_core::{train_baseline, AugmentationPolicy, LlmSurveyConfig};
use proptest::prelude::*;

fn smoke_survey(parallelism: Parallelism) -> SurveyDataset {
    let config = SurveyConfig {
        parallelism,
        ..SurveyConfig::smoke(77)
    };
    SurveyPipeline::new(config).run().expect("survey pipeline")
}

#[test]
fn survey_dataset_is_worker_count_invariant() {
    let serial = smoke_survey(Parallelism::serial());
    let parallel = smoke_survey(Parallelism::fixed(4));
    assert_eq!(serial.dataset(), parallel.dataset());
    assert_eq!(serial.dataset().split(), parallel.dataset().split());
    // byte-identical canonical form: per-image labels serialized in the
    // dataset's image order
    let canon = |s: &SurveyDataset| -> String {
        s.images()
            .iter()
            .map(|&id| serde_json::to_string(s.dataset().labels(id).unwrap()).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(canon(&serial), canon(&parallel));
}

#[test]
fn trained_detector_is_worker_count_invariant() {
    let survey = smoke_survey(Parallelism::serial());
    let train = |parallelism| {
        train_baseline(
            &survey,
            TrainConfig {
                epochs: 4,
                hard_negative_rounds: 1,
                parallelism,
                ..TrainConfig::default()
            },
            DetectorConfig {
                shrink: 4,
                ..DetectorConfig::default()
            },
            AugmentationPolicy::None,
        )
        .expect("training")
    };
    let serial = train(Parallelism::serial());
    let parallel = train(Parallelism::fixed(4));
    // weights are serialized before comparing so the check is bitwise, not
    // within-epsilon
    assert_eq!(
        serial.detector.to_json().unwrap(),
        parallel.detector.to_json().unwrap()
    );
    assert_eq!(serial.report, parallel.report);
}

#[test]
fn llm_vote_tallies_are_worker_count_invariant() {
    let survey = smoke_survey(Parallelism::serial());
    let ids: Vec<ImageId> = survey.images().iter().take(24).copied().collect();
    let run = |parallelism| {
        nbhd_core::run_llm_survey(
            &survey,
            nbhd_core::paper_lineup(),
            &ids,
            &LlmSurveyConfig {
                executor: ExecutorConfig {
                    parallelism,
                    ..ExecutorConfig::default()
                },
                ..LlmSurveyConfig::default()
            },
        )
        .expect("llm survey")
    };
    let serial = run(Parallelism::serial());
    let parallel = run(Parallelism::fixed(4));
    assert_eq!(serial.ensemble.voted, parallel.ensemble.voted);
    assert_eq!(serial.voted_table, parallel.voted_table);
    assert_eq!(serial.tables, parallel.tables);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // the substrate's core contract: output order matches input order for
    // any worker count and any chunk size, including ragged tails
    #[test]
    fn par_map_preserves_input_order_for_any_chunking(
        len in 0usize..200,
        workers in 1usize..9,
        chunk in 1usize..33,
    ) {
        let items: Vec<u64> = (0..len as u64).collect();
        let out = nbhd_core::exec::par_map_chunked(workers, chunk, &items, |i, &x| {
            (i as u64, x * 3 + 1)
        });
        prop_assert_eq!(out.len(), items.len());
        for (i, (idx, val)) in out.iter().enumerate() {
            prop_assert_eq!(*idx, i as u64);
            prop_assert_eq!(*val, items[i] * 3 + 1);
        }
    }
}
