//! Cross-crate determinism: every parallel code path in the workspace must
//! produce results bit-identical to its serial counterpart, because all
//! randomness is keyed by item identity (per-item seeds) rather than by
//! scheduling order.

use nbhd::prelude::*;
use nbhd_core::{train_baseline, AugmentationPolicy, LlmSurveyConfig};
use proptest::prelude::*;

fn smoke_survey(parallelism: Parallelism) -> SurveyDataset {
    let config = SurveyConfig {
        parallelism,
        ..SurveyConfig::smoke(77)
    };
    SurveyPipeline::new(config).run().expect("survey pipeline")
}

#[test]
fn survey_dataset_is_worker_count_invariant() {
    let serial = smoke_survey(Parallelism::serial());
    let parallel = smoke_survey(Parallelism::fixed(4));
    assert_eq!(serial.dataset(), parallel.dataset());
    assert_eq!(serial.dataset().split(), parallel.dataset().split());
    // byte-identical canonical form: per-image labels serialized in the
    // dataset's image order
    let canon = |s: &SurveyDataset| -> String {
        s.images()
            .iter()
            .map(|&id| serde_json::to_string(s.dataset().labels(id).unwrap()).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(canon(&serial), canon(&parallel));
}

#[test]
fn sharded_serial_run_matches_unsharded_parallel_run() {
    // the strongest cross-path pin: four shards driven serially must merge
    // to the byte-identical dataset an unsharded four-worker pipeline
    // produces — shard membership, capture seeding, and the merge are all
    // functions of item identity, never of scheduling
    let config = SurveyConfig {
        parallelism: Parallelism::serial(),
        ..SurveyConfig::smoke(77)
    };
    let sharded = nbhd_core::run_sharded(&config, ShardPlan::new(4).unwrap(), None, None)
        .expect("sharded run");
    let unsharded = smoke_survey(Parallelism::fixed(4));
    assert_eq!(sharded.survey().dataset(), unsharded.dataset());
    assert_eq!(
        sharded.survey().dataset().split(),
        unsharded.dataset().split()
    );
    assert_eq!(
        sharded.billed_images(),
        unsharded.imagery_usage().billed_images
    );
    assert_eq!(
        sharded.fees_usd().to_bits(),
        unsharded.imagery_usage().fees_usd.to_bits(),
        "fees must fold to the same bits across path and worker count"
    );
}

#[test]
fn trained_detector_is_worker_count_invariant() {
    let survey = smoke_survey(Parallelism::serial());
    let train = |parallelism| {
        train_baseline(
            &survey,
            TrainConfig {
                epochs: 4,
                hard_negative_rounds: 1,
                parallelism,
                ..TrainConfig::default()
            },
            DetectorConfig {
                shrink: 4,
                ..DetectorConfig::default()
            },
            AugmentationPolicy::None,
        )
        .expect("training")
    };
    let serial = train(Parallelism::serial());
    let parallel = train(Parallelism::fixed(4));
    // weights are serialized before comparing so the check is bitwise, not
    // within-epsilon
    assert_eq!(
        serial.detector.to_json().unwrap(),
        parallel.detector.to_json().unwrap()
    );
    assert_eq!(serial.report, parallel.report);
}

#[test]
fn llm_vote_tallies_are_worker_count_invariant() {
    let survey = smoke_survey(Parallelism::serial());
    let ids: Vec<ImageId> = survey.images().iter().take(24).copied().collect();
    let run = |parallelism| {
        nbhd_core::run_llm_survey(
            &survey,
            nbhd_core::paper_lineup(),
            &ids,
            &LlmSurveyConfig {
                executor: ExecutorConfig {
                    parallelism,
                    ..ExecutorConfig::default()
                },
                ..LlmSurveyConfig::default()
            },
        )
        .expect("llm survey")
    };
    let serial = run(Parallelism::serial());
    let parallel = run(Parallelism::fixed(4));
    assert_eq!(serial.ensemble.voted, parallel.ensemble.voted);
    assert_eq!(serial.voted_table, parallel.voted_table);
    assert_eq!(serial.tables, parallel.tables);
}

#[test]
fn run_summary_deterministic_surface_is_worker_count_invariant() {
    use std::sync::Arc;

    // the full checkpointed study, observed end to end: the virtual-time
    // span tree and every deterministic counter must be byte-identical at
    // any worker count (wall-clock timings are excluded from the surface)
    let observe = |parallelism| {
        let plan = RunPlan {
            survey: SurveyConfig {
                parallelism,
                ..RunPlan::smoke(88).survey
            },
            ..RunPlan::smoke(88)
        };
        let obs = Obs::default();
        let report = nbhd_core::run_observed(&plan, Arc::new(MemoryStore::new()), &obs)
            .expect("observed run");
        (report, obs.summary())
    };
    let (serial_report, serial) = observe(Parallelism::serial());
    let (parallel_report, parallel) = observe(Parallelism::fixed(4));
    assert_eq!(serial_report, parallel_report);
    assert_eq!(
        serial.deterministic_text(),
        parallel.deterministic_text(),
        "span tree + counters must not depend on scheduling"
    );
    // the surface is non-trivial: spans from every stage, counters from
    // exec, client accounting, and imagery billing
    let text = serial.deterministic_text();
    for needle in [
        "run/survey/capture",
        "run/detector",
        "run/ensemble",
        "run/bootstrap",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    assert!(text.contains("exec.tasks"));
    assert!(text.contains("gsv.billed_images"));
    // histograms ride the deterministic surface: the sample multisets
    // (latency draws, stage virtual durations) are scheduling-invariant
    // even though per-worker arrival order is not
    assert_eq!(serial.metrics.histograms, parallel.metrics.histograms);
    assert!(text.contains("hist core.stage_virtual_ms"));
    assert!(text.contains(".latency_ms"));
    // wall-clock metrics stay out of the deterministic surface
    assert!(!text.contains("exec.steals"));
    assert!(!text.contains("exec.chunk_items"));
    assert!(!text.contains("usd"));
}

#[test]
fn budget_reports_are_worker_count_invariant() {
    use std::sync::Arc;

    use nbhd_obs::BudgetSpec;

    // the budget gate must never depend on scheduling: a report computed
    // over a 4-worker run is the same typed object, byte for byte, as one
    // computed over the serial run
    let artifact = |parallelism| {
        let plan = RunPlan {
            survey: SurveyConfig {
                parallelism,
                ..RunPlan::smoke(88).survey
            },
            ..RunPlan::smoke(88)
        };
        let obs = Obs::default();
        nbhd_core::run_observed(&plan, Arc::new(MemoryStore::new()), &obs).expect("observed run");
        RunArtifact::from_obs("budget-determinism", &obs)
    };
    let serial = artifact(Parallelism::serial());
    let parallel = artifact(Parallelism::fixed(4));

    let spec = BudgetSpec::from_artifact("determinism-budget", &serial, 1.0);
    assert!(
        spec.rules.len() > 10,
        "a full observed run must yield a substantial derived spec, got {}",
        spec.rules.len()
    );
    let serial_report = spec.evaluate(&serial);
    let parallel_report = spec.evaluate(&parallel);
    assert!(serial_report.is_pass(), "{:?}", serial_report.violations);
    assert_eq!(
        serde_json::to_string(&serial_report).unwrap(),
        serde_json::to_string(&parallel_report).unwrap(),
        "every verdict and observed value must be worker-count-invariant"
    );
}

#[test]
fn trace_journal_survives_kill_and_resume_without_duplicate_spans() {
    use std::collections::HashSet;
    use std::fs;
    use std::sync::Arc;

    use nbhd_journal::{journal_path, scan_file, KillSchedule};
    use nbhd_obs::{Obs, SPAN_RECORD_KIND};

    let mut plan = RunPlan::smoke(91);
    plan.survey.locations = 3;
    plan.epochs = 1;
    plan.resamples = 4;
    let manifest = plan.manifest("obs-torture").unwrap();
    let dir = std::env::temp_dir().join("nbhd-obs-kill");
    let _ = fs::remove_dir_all(&dir);

    // first process dies mid-run (some spans may already be journaled)
    let journal = Journal::create(&dir, &manifest)
        .unwrap()
        .with_kill(KillSchedule::at(55));
    let first = nbhd_core::run_observed(&plan, Arc::new(journal), &Obs::default());
    assert!(first.is_err(), "kill schedule must abort the first process");

    // second process resumes from the same directory and completes
    let journal = Journal::open(&dir, &manifest).unwrap();
    let obs = Obs::default();
    let report = nbhd_core::run_observed(&plan, Arc::new(journal), &obs).unwrap();
    assert_eq!(
        report,
        nbhd_core::run_checkpointed(&plan, Arc::new(MemoryStore::new())).unwrap(),
        "resumed observed run must match an uninterrupted one"
    );

    // the raw on-disk frames never repeat a span key, across both processes
    let scan = scan_file(&journal_path(&dir)).unwrap();
    let span_keys: Vec<&str> = scan
        .records
        .iter()
        .filter(|r| r.kind == SPAN_RECORD_KIND)
        .map(|r| r.key.as_str())
        .collect();
    let unique: HashSet<&str> = span_keys.iter().copied().collect();
    assert_eq!(
        span_keys.len(),
        unique.len(),
        "a span key was journaled twice across kill/resume"
    );
    assert!(
        span_keys.contains(&"run"),
        "the resumed process journals its root span"
    );
    fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // the substrate's core contract: output order matches input order for
    // any worker count and any chunk size, including ragged tails
    #[test]
    fn par_map_preserves_input_order_for_any_chunking(
        len in 0usize..200,
        workers in 1usize..9,
        chunk in 1usize..33,
    ) {
        let items: Vec<u64> = (0..len as u64).collect();
        let out = nbhd_core::exec::par_map_chunked(workers, chunk, &items, |i, &x| {
            (i as u64, x * 3 + 1)
        });
        prop_assert_eq!(out.len(), items.len());
        for (i, (idx, val)) in out.iter().enumerate() {
            prop_assert_eq!(*idx, i as u64);
            prop_assert_eq!(*val, items[i] * 3 + 1);
        }
    }
}
