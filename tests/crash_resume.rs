//! Crash/resume torture harness for the run journal.
//!
//! The contract under test: kill the process at *any* point — after any
//! number of journal appends, with or without a torn half-written frame on
//! disk — resume from the run directory, and the final [`RunReport`]
//! (dataset JSON, detector weights, vote tallies, bootstrap interval, fee
//! totals) is byte-identical to an uninterrupted run. And no scene is ever
//! billed twice, under any kill point, at any parallelism.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nbhd_core::exec::Parallelism;
use nbhd_core::gsv::FEE_RECORD_KIND;
use nbhd_core::{run_checkpointed, RunPlan, RunReport};
use nbhd_journal::{journal_path, scan_file, Journal, JournalError, KillSchedule, MemoryStore};

// the torture plan: small enough that the full pipeline runs in tens of
// milliseconds, large enough that the journal spans every record kind
// (fees, captures, harvests, the detector stage, votes, resamples)
fn plan_with(parallelism: Parallelism) -> RunPlan {
    let mut plan = RunPlan::smoke(99);
    plan.survey.locations = 3;
    plan.survey.parallelism = parallelism;
    plan.epochs = 1;
    plan.resamples = 4;
    plan
}

fn uninterrupted(plan: &RunPlan) -> RunReport {
    run_checkpointed(plan, Arc::new(MemoryStore::new())).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nbhd-crash-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every fee in the journal file names a distinct scene, and the report's
/// billed-image count equals the number of fee records — the
/// "no scene billed twice across restarts" invariant, checked against the
/// raw on-disk frames (not the keyed replay map, which would hide dupes).
fn assert_fees_unique(dir: &Path, report: &RunReport) {
    let scan = scan_file(&journal_path(dir)).unwrap();
    let fee_keys: Vec<&str> = scan
        .records
        .iter()
        .filter(|r| r.kind == FEE_RECORD_KIND)
        .map(|r| r.key.as_str())
        .collect();
    let unique: HashSet<&str> = fee_keys.iter().copied().collect();
    assert_eq!(fee_keys.len(), unique.len(), "a scene fee was journaled twice");
    assert_eq!(
        unique.len() as u64,
        report.billed_images,
        "fee records must match billed scenes one-to-one"
    );
}

#[test]
fn parallel_and_serial_reports_agree() {
    let serial = uninterrupted(&plan_with(Parallelism::serial()));
    let par = uninterrupted(&plan_with(Parallelism::fixed(4)));
    assert_eq!(serial, par, "worker count must not change the run output");
    assert!(serial.billed_images > 0);
    assert!(serial.fees_usd > 0.0);
}

#[test]
fn kill_schedule_sweep_resumes_byte_identically() {
    for (pname, parallelism) in [
        ("serial", Parallelism::serial()),
        ("par4", Parallelism::fixed(4)),
    ] {
        let plan = plan_with(parallelism);
        let expected = uninterrupted(&plan);
        let manifest = plan.manifest("torture").unwrap();
        for &after in &[0u64, 1, 5, 17, 43, 100_000] {
            for &torn in &[0usize, 3, 9] {
                let dir = temp_dir(&format!("kill-{pname}-{after}-{torn}"));
                let journal = Journal::create(&dir, &manifest)
                    .unwrap()
                    .with_kill(KillSchedule::torn(after, torn));
                let first = run_checkpointed(&plan, Arc::new(journal));
                if let Ok(report) = &first {
                    // the kill point was beyond the journal's total record
                    // count: the run completes normally
                    assert_eq!(report, &expected, "{pname} after={after} torn={torn}");
                }

                // "restart the process": reopen the run directory and rerun
                let journal = Journal::open(&dir, &manifest).unwrap();
                if torn > 0 && first.is_err() {
                    assert!(
                        journal.recovery_note().is_some(),
                        "{pname} after={after} torn={torn}: torn tail must be reported"
                    );
                }
                let resumed = run_checkpointed(&plan, Arc::new(journal)).unwrap();
                assert_eq!(resumed, expected, "{pname} after={after} torn={torn}");
                assert_fees_unique(&dir, &resumed);
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}

#[test]
fn every_record_boundary_truncation_resumes_byte_identically() {
    let plan = plan_with(Parallelism::serial());
    let expected = uninterrupted(&plan);
    let manifest = plan.manifest("boundary").unwrap();

    // one full journaled run produces the reference journal bytes
    let full_dir = temp_dir("boundary-full");
    let journal = Journal::create(&full_dir, &manifest).unwrap();
    let report = run_checkpointed(&plan, Arc::new(journal)).unwrap();
    assert_eq!(report, expected, "journaling must not change the output");

    let bytes = fs::read(journal_path(&full_dir)).unwrap();
    let scan = scan_file(&journal_path(&full_dir)).unwrap();
    assert!(scan.corruption.is_none());
    let total = scan.records.len();
    assert!(total >= 20, "expected a substantive journal, got {total} records");

    // plan identity ignores parallelism, so a serially journaled run may
    // be resumed with 4 workers: alternate to prove keyed replay is
    // schedule-independent
    let par4 = {
        let mut p = plan.clone();
        p.survey.parallelism = Parallelism::fixed(4);
        p
    };

    // cut the journal at every record boundary; every third cut leaves a
    // torn fragment of the next frame behind (5 bytes = inside the frame
    // prefix, 13 = inside the record body)
    for (i, &offset) in scan.offsets.iter().enumerate() {
        let torn = [0usize, 5, 13][i % 3];
        let cut = (offset as usize + torn).min(bytes.len());
        let dir = temp_dir(&format!("boundary-{i}"));
        fs::create_dir_all(&dir).unwrap();
        fs::copy(full_dir.join("manifest.json"), dir.join("manifest.json")).unwrap();
        fs::write(journal_path(&dir), &bytes[..cut]).unwrap();

        let journal = Journal::open(&dir, &manifest).unwrap();
        assert_eq!(
            journal.restored_records(),
            i as u64,
            "cut {i}: exactly the records before the cut survive"
        );
        assert_eq!(journal.recovery_note().is_some(), torn > 0, "cut {i}");
        let resume_plan = if i % 2 == 0 { &plan } else { &par4 };
        let resumed = run_checkpointed(resume_plan, Arc::new(journal)).unwrap();
        assert_eq!(resumed, expected, "cut {i} (torn {torn})");
        assert_fees_unique(&dir, &resumed);
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&full_dir).unwrap();
}

#[test]
fn resume_with_a_different_plan_is_refused() {
    let plan = plan_with(Parallelism::serial());
    let manifest = plan.manifest("mismatch").unwrap();
    let dir = temp_dir("mismatch");
    let journal = Journal::create(&dir, &manifest)
        .unwrap()
        .with_kill(KillSchedule::at(4));
    assert!(run_checkpointed(&plan, Arc::new(journal)).is_err());

    // a different seed is a different run: resume is refused, the journal
    // is untouched
    let mut reseeded = plan.clone();
    reseeded.survey.seed = 100;
    assert!(matches!(
        Journal::open(&dir, &reseeded.manifest("mismatch").unwrap()),
        Err(JournalError::ConfigMismatch { .. })
    ));

    // but a different worker count is the *same* run, and resuming with it
    // still lands on the uninterrupted report
    let mut reparallel = plan.clone();
    reparallel.survey.parallelism = Parallelism::fixed(4);
    let journal = Journal::open(&dir, &reparallel.manifest("mismatch").unwrap()).unwrap();
    let resumed = run_checkpointed(&reparallel, Arc::new(journal)).unwrap();
    assert_eq!(resumed, uninterrupted(&plan));
    fs::remove_dir_all(&dir).unwrap();
}
