//! Cross-crate annotation flow: survey → LabelMe files on disk → reload →
//! rebuild an equivalent dataset.

use nbhd::annotate::{AnnotationStore, LabeledDataset, SplitRatios};
use nbhd::prelude::*;

#[test]
fn labelme_disk_round_trip_preserves_the_dataset() {
    let survey = SurveyPipeline::new(SurveyConfig::smoke(77)).run().unwrap();
    let dir = std::env::temp_dir().join(format!("nbhd-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = AnnotationStore::open(&dir).unwrap();

    let size = survey.config().image_size;
    for &id in survey.images() {
        store
            .save(survey.dataset().labels(id).unwrap(), size)
            .unwrap();
    }

    let reloaded = store.load_all().unwrap();
    assert_eq!(reloaded.len(), survey.images().len());
    let rebuilt = LabeledDataset::build(reloaded, size, SplitRatios::STUDY, 77).unwrap();
    assert_eq!(rebuilt.total_objects(), survey.dataset().total_objects());
    assert_eq!(rebuilt.object_counts(), survey.dataset().object_counts());
    for &id in survey.images() {
        assert_eq!(
            rebuilt.labels(id).unwrap().objects,
            survey.dataset().labels(id).unwrap().objects,
            "labels for {id} must round-trip bit-exactly"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn class_counts_shape_matches_the_paper() {
    // Paper: 1,927 objects over 1,200 locations with MR (505) the largest
    // class and AP (125) the smallest. Check the same ordering holds.
    let mut config = SurveyConfig::smoke(78);
    config.locations = 150;
    let survey = SurveyPipeline::new(config).run().unwrap();
    let counts = survey.dataset().object_counts();
    assert!(
        counts[Indicator::MultilaneRoad] > counts[Indicator::Apartment] * 2,
        "MR ({}) should dwarf AP ({})",
        counts[Indicator::MultilaneRoad],
        counts[Indicator::Apartment]
    );
    assert!(
        counts[Indicator::Sidewalk] > counts[Indicator::Apartment],
        "SW should outnumber AP"
    );
    let total = survey.dataset().total_objects();
    let per_location = total as f64 / 150.0;
    // paper: 1927 / 1200 ≈ 1.6 objects per location... per image here
    assert!(
        (4.0..=11.0).contains(&per_location),
        "objects per location {per_location:.2}"
    );
}
