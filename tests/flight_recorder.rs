//! Flight-recorder integration: run artifacts exported from real observed
//! runs must round-trip losslessly, render a well-formed Chrome trace, be
//! worker-count invariant on the deterministic surface, and drive the
//! `run_diff` regression gate (self-diff clean, injected slowdown flagged).

use std::sync::Arc;

use nbhd::prelude::*;
use nbhd_obs::RegressionKind;

/// A tiny observed study run, exported as an artifact.
fn observed_artifact(seed: u64, parallelism: Parallelism) -> RunArtifact {
    let base = RunPlan::smoke(seed);
    let mut plan = RunPlan {
        survey: SurveyConfig {
            parallelism,
            ..base.survey
        },
        ..base
    };
    plan.survey.locations = 3;
    plan.epochs = 1;
    plan.resamples = 4;
    let obs = Obs::default();
    nbhd_core::run_observed(&plan, Arc::new(MemoryStore::new()), &obs).expect("observed run");
    RunArtifact::from_obs("flight", &obs)
}

#[test]
fn artifact_round_trips_through_json_and_files() {
    let artifact = observed_artifact(47, Parallelism::serial());
    assert!(!artifact.spans.is_empty());
    assert!(!artifact.metrics.counters.is_empty());
    assert!(
        artifact
            .metrics
            .histograms
            .keys()
            .any(|k| k.ends_with(".latency_ms")),
        "observed run must publish latency histograms"
    );

    let json = artifact.to_json().unwrap();
    assert_eq!(RunArtifact::from_json(&json).unwrap(), artifact);

    let path = std::env::temp_dir().join("nbhd-flight-roundtrip/artifact.json");
    artifact.write_file(&path).unwrap();
    assert_eq!(RunArtifact::read_file(&path).unwrap(), artifact);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn chrome_trace_is_well_formed() {
    let artifact = observed_artifact(48, Parallelism::serial());
    let trace = artifact.chrome_trace();
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), artifact.spans.len());
    for event in events {
        assert_eq!(event["ph"], "X", "complete events only");
        assert!(event["name"].is_string());
        assert!(event["ts"].is_u64());
        assert!(event["dur"].is_u64());
    }
    assert!(
        events.iter().any(|e| e["name"] == "run"),
        "root span missing from trace"
    );
}

#[test]
fn self_diff_passes_and_injected_slowdown_is_flagged() {
    let artifact = observed_artifact(49, Parallelism::serial());

    let clean = run_diff(&artifact, &artifact, &DiffThresholds::default());
    assert!(
        clean.is_pass(),
        "self-diff regressions: {:?}",
        clean.regressions
    );
    assert!(clean.regressions.is_empty());

    // inject a uniform 2x virtual slowdown into every stage
    let mut slow = artifact.clone();
    for span in &mut slow.spans {
        slow_span(span);
    }
    // the run is big enough that at least one stage clears the floor
    assert!(
        artifact.spans.iter().any(|s| s.virtual_ms() >= 10),
        "no stage clears the diff floor; slowdown test would be vacuous"
    );
    let flagged = run_diff(&artifact, &slow, &DiffThresholds::default());
    assert!(!flagged.is_pass());
    assert!(flagged
        .regressions
        .iter()
        .any(|r| matches!(r.kind, RegressionKind::StageDuration)));
}

fn slow_span(span: &mut nbhd_obs::SpanRecord) {
    span.end_vms = span.start_vms + 2 * span.virtual_ms();
}

#[test]
fn budget_derived_from_clean_run_gates_injected_slowdown() {
    use nbhd_obs::{BudgetSpec, BudgetViolationKind};

    let artifact = observed_artifact(49, Parallelism::serial());

    // the absolute counterpart to the relative diff gate above: a budget
    // granted 1.5x headroom over the clean run holds for that run...
    let spec = BudgetSpec::from_artifact("clean-run-budget", &artifact, 1.5);
    assert!(spec.evaluate(&artifact).is_pass());

    // ...and must flag the same uniform 2x virtual slowdown
    let mut slow = artifact.clone();
    for span in &mut slow.spans {
        slow_span(span);
    }
    let report = spec.evaluate(&slow);
    assert!(!report.is_pass(), "a 2x slowdown fit inside 1.5x headroom");
    let stage_over: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.kind == BudgetViolationKind::StageOver)
        .collect();
    assert!(
        !stage_over.is_empty(),
        "expected stage-over violations, got {:?}",
        report.violations
    );
    // every finding names a stage the clean run actually recorded
    for violation in &stage_over {
        let key = violation.rule.strip_prefix("stage ").expect("stage rule");
        assert!(
            artifact.spans.iter().any(|s| s.key == key),
            "violation names unknown stage {key:?}"
        );
    }
}

#[test]
fn artifact_deterministic_surface_is_worker_count_invariant() {
    let serial = observed_artifact(50, Parallelism::serial());
    let parallel = observed_artifact(50, Parallelism::fixed(4));
    assert_eq!(
        serial.deterministic_text(),
        parallel.deterministic_text(),
        "artifact spans + counters + histograms must not depend on scheduling"
    );
    // and the whole artifact minus wall-clock fields matches: names equal,
    // schema equal
    assert_eq!(serial.name, parallel.name);
    assert_eq!(serial.schema_version, parallel.schema_version);
    assert_eq!(serial.metrics.histograms, parallel.metrics.histograms);
    assert_eq!(serial.metrics.counters, parallel.metrics.counters);
}
