//! Failure-injection integration: the orchestration layer must degrade
//! gracefully — and observably — when the simulated APIs misbehave.

use nbhd::client::{
    BreakerConfig, Ensemble, ExecutorConfig, FaultProfile, FaultRegime, FaultSchedule,
    ResilienceConfig, RetryPolicy,
};
use nbhd::prelude::*;

fn survey() -> SurveyDataset {
    SurveyPipeline::new(SurveyConfig::smoke(3001)).run().unwrap()
}

/// A larger survey (~480 images) for accuracy-sensitive chaos comparisons.
fn chaos_survey(seed: u64) -> SurveyDataset {
    let mut config = SurveyConfig::smoke(seed);
    config.locations = 120;
    SurveyPipeline::new(config).run().unwrap()
}

/// Three voters in preference order — the best simulated model (Gemini)
/// first, so degraded votes fall back toward the strongest panel member.
fn voter_ensemble(survey_seed: u64, resilience: ResilienceConfig) -> Ensemble {
    Ensemble::new(
        vec![
            (nbhd::vlm::gemini_15_pro(), true),
            (nbhd::vlm::claude_37(), true),
            (nbhd::vlm::grok_2(), true),
        ],
        survey_seed,
        FaultProfile::NONE,
        ExecutorConfig {
            rate_limit: None,
            ..ExecutorConfig::default()
        },
    )
    .with_resilience(resilience)
}

/// Outage window covering the whole run for one model.
fn grok_outage() -> FaultSchedule {
    FaultSchedule::new().with(FaultRegime::outage(0, u64::MAX).for_models(&["grok-2"]))
}

fn run_with_faults(faults: FaultProfile, max_attempts: u32) -> (f64, u64, u64) {
    let survey = survey();
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids).unwrap();
    let ensemble = Ensemble::new(
        vec![(nbhd::vlm::gemini_15_pro(), true)],
        survey.config().seed,
        faults,
        ExecutorConfig {
            parallelism: Parallelism::fixed(4),
            rate_limit: None,
            retry: RetryPolicy {
                max_attempts,
                ..RetryPolicy::default()
            },
            seed: 3001,
            ..ExecutorConfig::default()
        },
    );
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());
    let mut eval = PresenceEvaluator::new();
    for (pred, ctx) in outcome.per_model["gemini-1.5-pro"].presence.iter().zip(&contexts) {
        eval.observe(ctx.presence, *pred);
    }
    let usage = ensemble.meter().usage("gemini-1.5-pro").unwrap();
    (
        eval.table().average.accuracy,
        usage.retries,
        outcome.per_model["gemini-1.5-pro"].transport_failures as u64,
    )
}

#[test]
fn clean_transport_has_no_retries_or_failures() {
    let (acc, retries, failures) = run_with_faults(FaultProfile::NONE, 4);
    assert!(acc > 0.75, "accuracy {acc:.3}");
    assert_eq!(retries, 0);
    assert_eq!(failures, 0);
}

#[test]
fn flaky_transport_recovers_through_retries() {
    let (acc_clean, _, _) = run_with_faults(FaultProfile::NONE, 4);
    let (acc_flaky, retries, failures) = run_with_faults(
        FaultProfile {
            rate_limit: 0.10,
            timeout: 0.05,
            server_error: 0.05,
        },
        4,
    );
    assert!(retries > 0, "flakiness must cause retries");
    // retries absorb nearly all of the fault load
    assert!(
        acc_flaky > acc_clean - 0.05,
        "flaky accuracy {acc_flaky:.3} vs clean {acc_clean:.3} ({failures} failures)"
    );
}

#[test]
fn without_retries_faults_become_visible_failures() {
    let faults = FaultProfile {
        rate_limit: 0.15,
        timeout: 0.10,
        server_error: 0.05,
    };
    let (_, _, failures_no_retry) = run_with_faults(faults, 1);
    let (_, _, failures_retry) = run_with_faults(faults, 4);
    assert!(
        failures_no_retry > failures_retry,
        "retries must reduce failures: {failures_no_retry} vs {failures_retry}"
    );
    assert!(
        failures_no_retry >= 5,
        "30% fault rate over ~100 requests must surface failures, got {failures_no_retry}"
    );
}

#[test]
fn voting_with_a_dead_member_still_produces_answers() {
    // one voter always fails at the transport level; the vote of the
    // remaining two (one agreeing pair needed) still decides presence
    let survey = survey();
    let ids: Vec<ImageId> = survey.images().iter().take(30).copied().collect();
    let contexts = survey.contexts(&ids).unwrap();
    let dead_faults = FaultProfile {
        rate_limit: 0.0,
        timeout: 1.0,
        server_error: 0.0,
    };
    // ensemble-level faults apply to every member; instead check that the
    // harness convention (failure => empty set) keeps voting well-defined
    let ensemble = Ensemble::new(
        vec![
            (nbhd::vlm::gemini_15_pro(), true),
            (nbhd::vlm::claude_37(), true),
            (nbhd::vlm::grok_2(), true),
        ],
        survey.config().seed,
        dead_faults,
        ExecutorConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..ExecutorConfig::default()
        },
    );
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());
    // every transport died; votes exist and are all-empty (absent)
    assert_eq!(outcome.voted.len(), contexts.len());
    assert!(outcome.voted.iter().all(|s| s.is_empty()));
    for answers in outcome.per_model.values() {
        assert_eq!(answers.transport_failures, contexts.len());
        assert!(answers.responded.iter().all(|r| !r));
    }
    // quorum voting records the total loss honestly
    assert!(outcome
        .provenance
        .iter()
        .all(|p| p.fallback == nbhd::eval::VoteFallback::NoResponders));
}

/// Average accuracy of voted predictions against scene ground truth.
fn voted_accuracy(voted: &[IndicatorSet], contexts: &[nbhd::vlm::ImageContext]) -> f64 {
    let mut eval = PresenceEvaluator::new();
    for (pred, ctx) in voted.iter().zip(contexts) {
        eval.observe(ctx.presence, *pred);
    }
    eval.table().average.accuracy
}

#[test]
fn quorum_voting_survives_one_voter_down_within_three_points() {
    let survey = chaos_survey(1201);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids).unwrap();
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let params = SamplerParams::default();

    let clean = voter_ensemble(survey.config().seed, ResilienceConfig::default())
        .survey(&contexts, &prompt, &params);
    let degraded = voter_ensemble(
        survey.config().seed,
        ResilienceConfig {
            schedule: grok_outage(),
            ..ResilienceConfig::default()
        },
    )
    .survey(&contexts, &prompt, &params);

    assert_eq!(degraded.per_model["grok-2"].transport_failures, contexts.len());
    let acc_clean = voted_accuracy(&clean.voted, &contexts);
    let acc_degraded = voted_accuracy(&degraded.voted, &contexts);
    assert!(
        acc_clean - acc_degraded < 0.03,
        "losing one voter must cost <3 accuracy points: clean {acc_clean:.3} vs degraded {acc_degraded:.3}"
    );
    // every image still got a substantive two-voter quorum
    assert!(degraded
        .provenance
        .iter()
        .all(|p| p.fallback == nbhd::eval::VoteFallback::DegradedQuorum { responders: 2 }));
}

#[test]
fn legacy_empty_set_votes_measurably_distort_per_class_metrics() {
    let survey = chaos_survey(1202);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids).unwrap();
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let params = SamplerParams::default();

    let table_for = |legacy: bool| {
        let outcome = voter_ensemble(
            survey.config().seed,
            ResilienceConfig {
                schedule: grok_outage(),
                legacy_empty_votes: legacy,
                ..ResilienceConfig::default()
            },
        )
        .survey(&contexts, &prompt, &params);
        let mut eval = PresenceEvaluator::new();
        for (pred, ctx) in outcome.voted.iter().zip(&contexts) {
            eval.observe(ctx.presence, *pred);
        }
        eval.table()
    };
    let quorum = table_for(false);
    let legacy = table_for(true);

    // counting a dead voter as "everything absent" demands unanimity from
    // the two healthy voters, which visibly suppresses recall...
    assert!(
        quorum.average.recall - legacy.average.recall > 0.02,
        "quorum recall {:.3} vs legacy {:.3}",
        quorum.average.recall,
        legacy.average.recall
    );
    // ...and distorts individual classes well beyond noise
    let max_gap = Indicator::ALL
        .iter()
        .map(|&ind| quorum.per_class[ind].recall - legacy.per_class[ind].recall)
        .fold(f64::MIN, f64::max);
    assert!(
        max_gap > 0.05,
        "at least one class should lose >5 recall points under the legacy convention, max gap {max_gap:.3}"
    );
}

#[test]
fn circuit_breaker_halves_wasted_attempts_against_a_dead_model() {
    let survey = survey();
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids).unwrap();
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let params = SamplerParams::default();

    let retry_only = voter_ensemble(
        survey.config().seed,
        ResilienceConfig {
            schedule: grok_outage(),
            ..ResilienceConfig::default()
        },
    );
    let _ = retry_only.survey(&contexts, &prompt, &params);
    let wasted_retry_only = retry_only.api_attempts("grok-2").unwrap();

    let with_breaker = voter_ensemble(
        survey.config().seed,
        ResilienceConfig {
            schedule: grok_outage(),
            breaker: Some(BreakerConfig::default()),
            ..ResilienceConfig::default()
        },
    );
    let outcome = with_breaker.survey(&contexts, &prompt, &params);
    let wasted_breaker = with_breaker.api_attempts("grok-2").unwrap();

    // retry-only burns max_attempts per request against the dead API
    assert_eq!(
        wasted_retry_only,
        contexts.len() as u64 * u64::from(RetryPolicy::default().max_attempts)
    );
    assert!(
        wasted_breaker * 2 <= wasted_retry_only,
        "breaker must cut wasted attempts by >=50%: {wasted_breaker} vs {wasted_retry_only}"
    );
    // the vote still degrades gracefully while the breaker sheds load
    assert_eq!(outcome.per_model["grok-2"].transport_failures, contexts.len());

    // and the health report makes the outage observable
    let health = with_breaker.health_report();
    let grok = health
        .models
        .iter()
        .find(|m| m.model == "grok-2")
        .expect("grok health row");
    assert_eq!(grok.availability(), 0.0);
    assert!(grok.breaker.transitions >= 1);
    assert!(grok.usage.fail_fast > 0, "fail-fasts must be metered");
    let rendered = health.render("Chaos drill health");
    assert!(rendered.contains("grok-2"));
    assert!(rendered.contains("gemini-1.5-pro"));
}
