//! Failure-injection integration: the orchestration layer must degrade
//! gracefully — and observably — when the simulated APIs misbehave.

use nbhd::client::{Ensemble, ExecutorConfig, FaultProfile, RetryPolicy};
use nbhd::prelude::*;

fn survey() -> SurveyDataset {
    SurveyPipeline::new(SurveyConfig::smoke(3001)).run().unwrap()
}

fn run_with_faults(faults: FaultProfile, max_attempts: u32) -> (f64, u64, u64) {
    let survey = survey();
    let ids: Vec<ImageId> = survey.images().to_vec();
    let contexts = survey.contexts(&ids).unwrap();
    let ensemble = Ensemble::new(
        vec![(nbhd::vlm::gemini_15_pro(), true)],
        survey.config().seed,
        faults,
        ExecutorConfig {
            workers: 4,
            rate_limit: None,
            retry: RetryPolicy {
                max_attempts,
                ..RetryPolicy::default()
            },
            seed: 3001,
        },
    );
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());
    let mut eval = PresenceEvaluator::new();
    for (pred, ctx) in outcome.per_model["gemini-1.5-pro"].presence.iter().zip(&contexts) {
        eval.observe(ctx.presence, *pred);
    }
    let usage = ensemble.meter().usage("gemini-1.5-pro").unwrap();
    (
        eval.table().average.accuracy,
        usage.retries,
        outcome.per_model["gemini-1.5-pro"].transport_failures as u64,
    )
}

#[test]
fn clean_transport_has_no_retries_or_failures() {
    let (acc, retries, failures) = run_with_faults(FaultProfile::NONE, 4);
    assert!(acc > 0.75, "accuracy {acc:.3}");
    assert_eq!(retries, 0);
    assert_eq!(failures, 0);
}

#[test]
fn flaky_transport_recovers_through_retries() {
    let (acc_clean, _, _) = run_with_faults(FaultProfile::NONE, 4);
    let (acc_flaky, retries, failures) = run_with_faults(
        FaultProfile {
            rate_limit: 0.10,
            timeout: 0.05,
            server_error: 0.05,
        },
        4,
    );
    assert!(retries > 0, "flakiness must cause retries");
    // retries absorb nearly all of the fault load
    assert!(
        acc_flaky > acc_clean - 0.05,
        "flaky accuracy {acc_flaky:.3} vs clean {acc_clean:.3} ({failures} failures)"
    );
}

#[test]
fn without_retries_faults_become_visible_failures() {
    let faults = FaultProfile {
        rate_limit: 0.15,
        timeout: 0.10,
        server_error: 0.05,
    };
    let (_, _, failures_no_retry) = run_with_faults(faults, 1);
    let (_, _, failures_retry) = run_with_faults(faults, 4);
    assert!(
        failures_no_retry > failures_retry,
        "retries must reduce failures: {failures_no_retry} vs {failures_retry}"
    );
    assert!(
        failures_no_retry >= 5,
        "30% fault rate over ~100 requests must surface failures, got {failures_no_retry}"
    );
}

#[test]
fn voting_with_a_dead_member_still_produces_answers() {
    // one voter always fails at the transport level; the vote of the
    // remaining two (one agreeing pair needed) still decides presence
    let survey = survey();
    let ids: Vec<ImageId> = survey.images().iter().take(30).copied().collect();
    let contexts = survey.contexts(&ids).unwrap();
    let dead_faults = FaultProfile {
        rate_limit: 0.0,
        timeout: 1.0,
        server_error: 0.0,
    };
    // ensemble-level faults apply to every member; instead check that the
    // harness convention (failure => empty set) keeps voting well-defined
    let ensemble = Ensemble::new(
        vec![
            (nbhd::vlm::gemini_15_pro(), true),
            (nbhd::vlm::claude_37(), true),
            (nbhd::vlm::grok_2(), true),
        ],
        survey.config().seed,
        dead_faults,
        ExecutorConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..ExecutorConfig::default()
        },
    );
    let prompt = Prompt::build(Language::English, PromptMode::Parallel);
    let outcome = ensemble.survey(&contexts, &prompt, &SamplerParams::default());
    // every transport died; votes exist and are all-empty (absent)
    assert_eq!(outcome.voted.len(), contexts.len());
    assert!(outcome.voted.iter().all(|s| s.is_empty()));
    for answers in outcome.per_model.values() {
        assert_eq!(answers.transport_failures, contexts.len());
    }
}
