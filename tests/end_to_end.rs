//! End-to-end integration: the whole reproduction pipeline at smoke scale.

use nbhd::prelude::*;
use nbhd_core::{train_baseline, AugmentationPolicy, LlmSurveyConfig};

#[test]
fn survey_to_detector_to_llms() {
    // 1. data collection
    let survey = SurveyPipeline::new(SurveyConfig::smoke(1001)).run().unwrap();
    let n = survey.images().len();
    assert!(n >= 80, "smoke survey too small: {n}");
    let split = survey.dataset().split();
    assert!(!split.train.is_empty() && !split.val.is_empty() && !split.test.is_empty());

    // 2. supervised baseline
    let outcome = train_baseline(
        &survey,
        TrainConfig {
            epochs: 6,
            hard_negative_rounds: 1,
            ..TrainConfig::default()
        },
        DetectorConfig {
            shrink: 4,
            ..DetectorConfig::default()
        },
        AugmentationPolicy::None,
    )
    .unwrap();
    assert!(outcome.report.map50 > 0.05, "mAP50 {:.3}", outcome.report.map50);

    // 3. LLM survey over the same images
    let ids: Vec<ImageId> = survey.images().to_vec();
    let llm = nbhd_core::run_llm_survey(
        &survey,
        nbhd_core::paper_lineup(),
        &ids,
        &LlmSurveyConfig::default(),
    )
    .unwrap();
    assert_eq!(llm.truth.len(), n);
    // every simulated model lands in a plausible accuracy band
    for (name, table) in &llm.tables {
        let acc = table.average.accuracy;
        assert!((0.70..=0.99).contains(&acc), "{name} accuracy {acc:.3}");
    }
    // voting is at least competitive with the single models it aggregates
    let vote = llm.voted_table.average.accuracy;
    let best_single = llm
        .tables
        .values()
        .map(|t| t.average.accuracy)
        .fold(0.0f64, f64::max);
    assert!(vote > best_single - 0.06, "vote {vote:.3} vs best {best_single:.3}");
}

#[test]
fn survey_images_are_reproducible_and_billed() {
    let survey = SurveyPipeline::new(SurveyConfig::smoke(1002)).run().unwrap();
    let after_run = survey.imagery_usage();
    assert_eq!(
        after_run.billed_images as usize,
        survey.images().len(),
        "each scene renders and bills exactly once during the survey"
    );
    let id = survey.images()[7];
    let a = survey.image(id).unwrap();
    let b = survey.image(id).unwrap();
    assert_eq!(a, b);
    let usage = survey.imagery_usage();
    assert_eq!(usage.billed_images, after_run.billed_images, "fetches come from cache");
    assert_eq!(usage.cache_hits, after_run.cache_hits + 2);
    assert!(usage.fees_usd > 0.0);
}

#[test]
fn ground_truth_labels_and_llm_contexts_agree() {
    let survey = SurveyPipeline::new(SurveyConfig::smoke(1003)).run().unwrap();
    for &id in survey.images().iter().take(20) {
        let spec = survey.ground_truth(id).unwrap();
        let ctx = survey.context(id).unwrap();
        assert_eq!(spec.presence(), ctx.presence);
        // rendered labels match the spec's presence
        let (_, objects) = nbhd::scene::render(&spec, survey.config().image_size);
        let rendered: IndicatorSet = objects.iter().map(|o| o.indicator).collect();
        assert_eq!(rendered, spec.presence());
    }
}

#[test]
fn different_seeds_give_different_surveys() {
    let a = SurveyPipeline::new(SurveyConfig::smoke(1)).run().unwrap();
    let b = SurveyPipeline::new(SurveyConfig::smoke(2)).run().unwrap();
    assert_ne!(a.dataset(), b.dataset());
}
