//! Calibration integration tests: the simulated LLM ensemble must land
//! near the paper's published statistics at a meaningful sample size.
//!
//! Tolerances are deliberately loose (±0.05–0.08): these are stochastic
//! systems evaluated over ~600 images, and the goal is shape fidelity, not
//! digit matching (DESIGN.md §2).

use nbhd::prelude::*;
use nbhd_core::{paper_lineup, run_llm_survey, LlmSurveyConfig};

fn medium_survey(seed: u64) -> SurveyDataset {
    let mut config = SurveyConfig::smoke(seed);
    config.locations = 150; // ~600 images; contexts only, no rendering
    SurveyPipeline::new(config).run().unwrap()
}

#[test]
fn per_model_accuracy_matches_paper() {
    let survey = medium_survey(42);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let outcome =
        run_llm_survey(&survey, paper_lineup(), &ids, &LlmSurveyConfig::default()).unwrap();
    // paper Fig. 5: ChatGPT 84, Gemini 88, Claude 86, Grok 84
    let expected = [
        ("chatgpt-4o-mini", 0.84),
        ("gemini-1.5-pro", 0.88),
        ("claude-3.7", 0.86),
        ("grok-2", 0.84),
    ];
    for (name, paper) in expected {
        let measured = outcome.tables[name].average.accuracy;
        assert!(
            (measured - paper).abs() < 0.06,
            "{name}: measured {measured:.3} vs paper {paper:.2}"
        );
    }
}

#[test]
fn majority_vote_reaches_paper_band_and_sr_stays_weak() {
    let survey = medium_survey(43);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let outcome =
        run_llm_survey(&survey, paper_lineup(), &ids, &LlmSurveyConfig::default()).unwrap();
    let vote = &outcome.voted_table;
    // paper: 88.5% average
    assert!(
        (vote.average.accuracy - 0.885).abs() < 0.07,
        "vote accuracy {:.3}",
        vote.average.accuracy
    );
    // the paper's headline failure: single-lane roads are by far the worst
    let sr = vote.per_class[Indicator::SingleLaneRoad].accuracy;
    for ind in [
        Indicator::Streetlight,
        Indicator::MultilaneRoad,
        Indicator::Powerline,
        Indicator::Apartment,
    ] {
        assert!(
            sr < vote.per_class[ind].accuracy - 0.05,
            "SR ({sr:.3}) should trail {ind} ({:.3})",
            vote.per_class[ind].accuracy
        );
    }
}

#[test]
fn single_lane_recall_is_high_but_precision_low_for_all_models() {
    // Table III-VI shape: every LLM says yes to SR (recall ~1) with poor
    // precision (0.4-0.55).
    let survey = medium_survey(44);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let outcome =
        run_llm_survey(&survey, paper_lineup(), &ids, &LlmSurveyConfig::default()).unwrap();
    for (name, table) in &outcome.tables {
        let m = table.per_class[Indicator::SingleLaneRoad];
        assert!(m.recall > 0.80, "{name} SR recall {:.3}", m.recall);
        assert!(m.precision < 0.75, "{name} SR precision {:.3}", m.precision);
    }
}

#[test]
fn language_ordering_matches_figure_six() {
    let survey = medium_survey(45);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let mut recalls = Vec::new();
    for language in [
        Language::English,
        Language::Bengali,
        Language::Spanish,
        Language::Chinese,
    ] {
        let outcome = run_llm_survey(
            &survey,
            vec![(nbhd::vlm::gemini_15_pro(), true)],
            &ids,
            &LlmSurveyConfig {
                language,
                ..LlmSurveyConfig::default()
            },
        )
        .unwrap();
        recalls.push((language, outcome.tables["gemini-1.5-pro"].average.recall));
    }
    // en > bn > es and en > zh, with en near the paper's 0.897
    assert!((recalls[0].1 - 0.897).abs() < 0.06, "en recall {:.3}", recalls[0].1);
    assert!(recalls[0].1 > recalls[1].1, "en {:.3} <= bn {:.3}", recalls[0].1, recalls[1].1);
    assert!(recalls[1].1 > recalls[2].1, "bn {:.3} <= es {:.3}", recalls[1].1, recalls[2].1);
    assert!(
        recalls[0].1 - recalls[3].1 > 0.10,
        "zh should trail en by >10 points: en {:.3} zh {:.3}",
        recalls[0].1,
        recalls[3].1
    );
}

#[test]
fn default_sampler_settings_are_best_or_tied() {
    // Sec. IV-C4: defaults (T=1, p=.95) beat the tuned extremes slightly.
    let survey = medium_survey(46);
    let ids: Vec<ImageId> = survey.images().to_vec();
    let f1_at = |params: SamplerParams| {
        run_llm_survey(
            &survey,
            vec![(nbhd::vlm::gemini_15_pro(), true)],
            &ids,
            &LlmSurveyConfig {
                params,
                ..LlmSurveyConfig::default()
            },
        )
        .unwrap()
        .tables["gemini-1.5-pro"]
            .average
            .f1
    };
    let default = f1_at(SamplerParams::default());
    let cold = f1_at(SamplerParams {
        temperature: 0.1,
        top_p: 0.95,
    });
    let hot = f1_at(SamplerParams {
        temperature: 1.5,
        top_p: 0.95,
    });
    let narrow = f1_at(SamplerParams {
        temperature: 1.0,
        top_p: 0.5,
    });
    assert!(default >= cold - 0.01, "default {default:.3} vs cold {cold:.3}");
    assert!(default >= hot - 0.01, "default {default:.3} vs hot {hot:.3}");
    assert!(default >= narrow - 0.01, "default {default:.3} vs narrow {narrow:.3}");
}
