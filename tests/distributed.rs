//! The distributed-run contract, exercised across crate boundaries:
//! N per-process shard artifacts merge into an artifact byte-identical on
//! the deterministic surface to the single-process run, at any shard and
//! worker count; the merge algebra is order-invariant and refuses
//! mismatched runs with typed errors; and the coverage report's region
//! rows sum to its shard rows under every poison mix.

use nbhd::prelude::*;
use nbhd_obs::MergeError;
use proptest::prelude::*;

fn dist_config(seed: u64, parallelism: Parallelism) -> SurveyConfig {
    SurveyConfig {
        parallelism,
        ..SurveyConfig::smoke(seed)
    }
}

/// Runs every shard as its own fresh-Obs process would and merges.
fn merged_run(
    name: &str,
    config: &SurveyConfig,
    shards: usize,
    poison: Option<PoisonSchedule>,
) -> RunArtifact {
    let parts: Vec<RunArtifact> = (0..shards)
        .map(|index| {
            run_shard_distributed(
                name,
                config,
                shards,
                index,
                SupervisePolicy::default(),
                poison,
                None,
            )
            .expect("shard run")
            .artifact()
            .clone()
        })
        .collect();
    RunArtifact::merge_shards(name, &parts).expect("merge")
}

fn single_run(
    name: &str,
    config: &SurveyConfig,
    shards: usize,
    poison: Option<PoisonSchedule>,
) -> RunArtifact {
    run_supervised_artifact(
        name,
        config,
        shards,
        SupervisePolicy::default(),
        poison,
        None,
    )
    .expect("single-process run")
    .0
}

#[test]
fn merged_shards_byte_match_the_single_process_run() {
    for shards in [1usize, 2, 4, 8] {
        for parallelism in [Parallelism::serial(), Parallelism::fixed(4)] {
            let config = dist_config(41, parallelism);
            let single = single_run("dist", &config, shards, None);
            let merged = merged_run("dist", &config, shards, None);
            assert_eq!(
                merged.deterministic_text(),
                single.deterministic_text(),
                "deterministic surface must byte-match at {shards} shards, {parallelism:?}"
            );
            assert_eq!(
                merged.coverage, single.coverage,
                "coverage must fold to the single-process report at {shards} shards"
            );
            assert!(merged.shard.is_none(), "a merged artifact is a whole run");
            // the `.peak` gauge convention: the per-process high-water
            // marks max-fold to exactly the single-process value
            assert_eq!(
                merged.metrics.gauges.get(nbhd_core::SHARD_PEAK_GAUGE),
                single.metrics.gauges.get(nbhd_core::SHARD_PEAK_GAUGE),
                "peak-resident gauge must survive the merge at {shards} shards"
            );
            assert!(
                merged
                    .metrics
                    .gauges
                    .contains_key(nbhd_core::SHARD_PEAK_GAUGE),
                "both sides must actually publish the gauge"
            );
        }
    }
}

#[test]
fn merged_shards_byte_match_under_poison() {
    let poison = Some(
        PoisonSchedule::new(41)
            .with_panic_rate(0.2)
            .with_corrupt_rate(0.1),
    );
    let config = dist_config(41, Parallelism::serial());
    let single = single_run("poisoned", &config, 4, poison);
    let merged = merged_run("poisoned", &config, 4, poison);
    assert_eq!(merged.deterministic_text(), single.deterministic_text());
    assert_eq!(merged.coverage, single.coverage);
    let coverage = merged.coverage.as_ref().expect("coverage recorded");
    assert!(
        coverage.quarantined() > 0,
        "the poison mix must actually quarantine something for this test to bite"
    );
}

#[test]
fn merge_is_invariant_to_shard_arrival_order() {
    let config = dist_config(43, Parallelism::serial());
    let parts: Vec<RunArtifact> = (0..4)
        .map(|index| {
            run_shard_distributed(
                "order",
                &config,
                4,
                index,
                SupervisePolicy::default(),
                None,
                None,
            )
            .expect("shard run")
            .artifact()
            .clone()
        })
        .collect();
    let forward = RunArtifact::merge_shards("order", &parts).expect("merge");
    let mut scrambled: Vec<RunArtifact> = parts.clone();
    scrambled.reverse();
    scrambled.swap(1, 2);
    let backward = RunArtifact::merge_shards("order", &scrambled).expect("merge");
    assert_eq!(forward.deterministic_text(), backward.deterministic_text());
    assert_eq!(forward.coverage, backward.coverage);
}

#[test]
fn merge_refuses_mismatched_runs_with_typed_errors() {
    let config = dist_config(47, Parallelism::serial());
    let shard = |index: usize| {
        run_shard_distributed(
            "neg",
            &config,
            2,
            index,
            SupervisePolicy::default(),
            None,
            None,
        )
        .expect("shard run")
        .artifact()
        .clone()
    };
    let (zero, one) = (shard(0), shard(1));

    assert!(matches!(
        RunArtifact::merge_shards("neg", &[]),
        Err(MergeError::Empty)
    ));
    assert!(matches!(
        RunArtifact::merge_shards("neg", &[zero.clone(), zero.clone()]),
        Err(MergeError::DuplicateShard { index: 0 })
    ));
    assert!(matches!(
        RunArtifact::merge_shards("neg", &[zero.clone()]),
        Err(MergeError::MissingShard { index: 1, count: 2 })
    ));

    // a shard from a different configuration: tampered identity hash
    let mut foreign = one.clone();
    let mut identity = foreign.shard.expect("stamped");
    identity.config_hash ^= 1;
    foreign.shard = Some(identity);
    assert!(matches!(
        RunArtifact::merge_shards("neg", &[zero.clone(), foreign]),
        Err(MergeError::ConfigHashMismatch { shard: 1, .. })
    ));

    // a shard from a different partitioning
    let mut repartitioned = one.clone();
    let mut identity = repartitioned.shard.expect("stamped");
    identity.count = 4;
    repartitioned.shard = Some(identity);
    assert!(matches!(
        RunArtifact::merge_shards("neg", &[zero.clone(), repartitioned]),
        Err(MergeError::ShardCountMismatch { .. })
    ));

    // an artifact that never was a shard
    let mut unstamped = one.clone();
    unstamped.shard = None;
    assert!(matches!(
        RunArtifact::merge_shards("neg", &[zero.clone(), unstamped]),
        Err(MergeError::MissingIdentity { .. })
    ));

    // a shard that recorded no coverage while its peers did: the merge
    // refuses rather than inventing full coverage for the silent shard
    let mut silent = one.clone();
    silent.coverage = None;
    assert!(matches!(
        RunArtifact::merge_shards("neg", &[zero, silent]),
        Err(MergeError::CoverageMissing { shard: 1 })
    ));
}

#[test]
fn rendered_html_report_is_self_contained() {
    let config = dist_config(53, Parallelism::serial());
    let merged = merged_run("report", &config, 2, None);
    let html = nbhd_core::eval::render_html_report(&merged);
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.trim_end().ends_with("</html>"));
    assert!(html.contains("id=\"chrome-trace\""));
    for needle in ["href=", "src="] {
        assert!(!html.contains(needle), "external reference via {needle}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite regression pin: the coverage report's per-region rows must
    /// account for exactly the locations the shard plan assigned — so the
    /// region totals equal the shard totals column for column, under every
    /// poison mix (the original bug derived `planned` from completions,
    /// undercounting regions whose locations quarantined).
    #[test]
    fn region_rows_sum_to_shard_rows_under_every_poison_mix(
        seed in 1u64..2000,
        panic_rate in 0.0f64..0.6,
        corrupt_rate in 0.0f64..0.4,
        shards in 1usize..5,
    ) {
        let config = SurveyConfig {
            locations: 12,
            ..SurveyConfig::smoke(seed)
        };
        let poison = Some(
            PoisonSchedule::new(seed)
                .with_panic_rate(panic_rate)
                .with_corrupt_rate(corrupt_rate),
        );
        let outcome = run_supervised(
            &config,
            ShardPlan::new(shards).unwrap(),
            SupervisePolicy::default(),
            poison,
            None,
            None,
        )
        .expect("supervised run");
        let report = outcome.coverage().expect("supervised runs report coverage");

        let shard_planned: usize = report.shards.iter().map(|s| s.planned_locations).sum();
        let shard_completed: usize = report.shards.iter().map(|s| s.completed_locations).sum();
        let shard_quarantined: usize = report.shards.iter().map(|s| s.quarantined.len()).sum();
        let shard_skipped: usize = report.shards.iter().map(|s| s.skipped.len()).sum();

        let region_planned: usize = report.regions.iter().map(|r| r.planned).sum();
        let region_completed: usize = report.regions.iter().map(|r| r.completed).sum();
        let region_quarantined: usize = report.regions.iter().map(|r| r.quarantined).sum();
        let region_skipped: usize = report.regions.iter().map(|r| r.skipped).sum();

        prop_assert_eq!(region_planned, shard_planned, "planned");
        prop_assert_eq!(region_completed, shard_completed, "completed");
        prop_assert_eq!(region_quarantined, shard_quarantined, "quarantined");
        prop_assert_eq!(region_skipped, shard_skipped, "skipped");
        // and the partition invariant inside every region row
        for row in &report.regions {
            prop_assert_eq!(
                row.completed + row.quarantined + row.skipped,
                row.planned,
                "region {} must partition planned into completed/quarantined/skipped",
                row.region.clone()
            );
        }
    }
}
