//! Overload drill: a three-tenant traffic storm against the serving layer.
//!
//! The contract under test, end to end: under a storm (burst + 429 storm +
//! a flapping model + a quota-starved tenant) the service never queues
//! unboundedly, serves every *admitted* request through some tier with
//! provenance attached, rejects the rest with typed reasons, keeps its
//! whole decision surface byte-identical between serial and 4-worker
//! execution, and — killed mid-run and resumed from the journal — never
//! bills a request twice.

use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use nbhd_client::{BreakerConfig, FaultSchedule, Parallelism};
use nbhd_journal::{journal_path, scan_file, Journal, KillSchedule, RunManifest};
use nbhd_serve::{
    DegradePolicy, Rejected, RunReport, ServiceConfig, ServiceTier, StormBuilder, SurveyService,
    TenantConfig, Workload, RESPONSE_RECORD_KIND,
};

const SEED: u64 = 2024;
const ARRIVALS: usize = 40;

/// The storm: a steady tenant, a bursty tenant that overflows its queue,
/// a slow tenant with a starved quota, a 60% 429 storm, and a flapping
/// grok-2 (down [0, 1500) and [3000, 4500)).
fn storm() -> (Workload, FaultSchedule) {
    StormBuilder::new(SEED)
        .steady("atlas", 0, 14, 150)
        .burst("blitz", 600, 18)
        .steady("crawl", 0, 8, 400)
        .storm_429(500, 3_500, 0.6, 250)
        .breaker_flap("grok-2", 0, 1_500, 2)
        .build()
}

fn config(parallelism: Parallelism) -> ServiceConfig {
    let (_, schedule) = storm();
    ServiceConfig {
        schedule,
        parallelism,
        breaker: BreakerConfig {
            min_samples: 4,
            cooldown_ms: 2_000,
            probe_count: 2,
            ..BreakerConfig::default()
        },
        degrade: DegradePolicy {
            quorum_depth: 10,
            detector_depth: 20,
        },
        global_queue_capacity: 24,
        ..ServiceConfig::default()
    }
}

fn tenants() -> Vec<TenantConfig> {
    vec![
        TenantConfig::new("atlas"),
        TenantConfig::new("blitz")
            .with_quota(10, 4.0)
            .with_queue_capacity(6),
        TenantConfig::new("crawl").with_quota(2, 0.05),
    ]
}

fn run(parallelism: Parallelism) -> (RunReport, String) {
    let (workload, _) = storm();
    let mut service = SurveyService::new(config(parallelism), tenants());
    let report = service.run(workload).unwrap();
    let text = service.obs().summary().deterministic_text();
    (report, text)
}

#[test]
fn every_arrival_is_served_or_rejected_with_provenance() {
    let (workload, _) = storm();
    assert_eq!(workload.len(), ARRIVALS, "the storm script changed shape");

    let (report, _) = run(Parallelism::fixed(4));
    assert_eq!(report.responses.len() + report.rejections.len(), ARRIVALS);

    // no silent drops: every admitted request was served through some tier
    for (name, bill) in &report.bills {
        assert_eq!(bill.admitted, bill.served, "tenant {name} dropped requests");
        assert_eq!(bill.replayed, 0);
    }

    // the storm bites, and rejections are typed
    let kinds: HashSet<&'static str> = report
        .rejections
        .iter()
        .map(|r| match &r.reason {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::QuotaExhausted { .. } => "quota",
            Rejected::BudgetExhausted => "budget",
            Rejected::Degraded { .. } => "shed",
        })
        .collect();
    assert!(
        kinds.contains("queue_full"),
        "blitz's burst must overflow its queue: {kinds:?}"
    );
    assert!(
        kinds.contains("quota"),
        "crawl must exhaust its quota: {kinds:?}"
    );

    // degradation engages: the grok-2 flap guarantees at least one batch
    // runs below the full ensemble
    let counts = report.tier_counts();
    assert!(
        counts.len() >= 2,
        "expected multiple serving tiers, got {counts:?}"
    );
    assert!(counts.contains_key(&ServiceTier::FullEnsemble));

    // provenance is attached and internally consistent on every response
    for r in &report.responses {
        let detector = r.provenance.tier == ServiceTier::DetectorOnly;
        assert_eq!(
            r.provenance.queried.is_empty(),
            detector,
            "{}#{}: queried panel must match the tier",
            r.tenant,
            r.request_id
        );
        assert!(r.provenance.batch > 0, "fresh responses carry their batch");
        assert!(!r.provenance.replayed);
    }
    assert!(!report.decision_log.is_empty());
}

#[test]
fn decision_surface_is_byte_identical_serial_vs_four_workers() {
    let (serial, serial_text) = run(Parallelism::serial());
    let (parallel, parallel_text) = run(Parallelism::fixed(4));
    assert_eq!(serial.responses, parallel.responses);
    assert_eq!(serial.rejections, parallel.rejections);
    assert_eq!(serial.decision_text(), parallel.decision_text());
    // ledgers are bit-identical: billing happens in the serial finalize
    // loop, so even the f64 spend sums in the same order
    assert_eq!(serial.bills, parallel.bills);
    // the whole deterministic observability surface (spans, counters,
    // histograms) agrees byte-for-byte
    assert_eq!(serial_text, parallel_text);
    assert!(
        !serial.rejections.is_empty(),
        "the storm must actually reject something"
    );
}

#[test]
fn tenant_artifacts_and_slo_verdicts_are_byte_identical_serial_vs_four_workers() {
    use nbhd_serve::SloSpec;

    // per-tenant observability rides the same determinism contract as the
    // decision surface: the exported tenant artifact and the SLO verdict
    // rendered from it must not depend on worker count
    let observe = |parallelism| {
        let (workload, _) = storm();
        let mut service = SurveyService::new(config(parallelism), tenants());
        service.run(workload).unwrap();
        ["atlas", "blitz", "crawl"].map(|name| {
            let artifact = service.tenant_artifact(name).expect("tenant artifact");
            let verdict = SloSpec::default().evaluate(name, &artifact);
            (
                serde_json::to_string(&artifact).unwrap(),
                serde_json::to_string(&verdict).unwrap(),
            )
        })
    };
    let serial = observe(Parallelism::serial());
    let parallel = observe(Parallelism::fixed(4));
    for (tenant, (s, p)) in ["atlas", "blitz", "crawl"]
        .iter()
        .zip(serial.iter().zip(&parallel))
    {
        assert_eq!(s.0, p.0, "tenant {tenant}: artifact must be byte-identical");
        assert_eq!(
            s.1, p.1,
            "tenant {tenant}: SLO verdict must be byte-identical"
        );
    }

    // and the SLO actually discriminates: blitz's burst overflows its
    // six-deep queue, so a tight rejection ceiling must flag it by name
    let (workload, _) = storm();
    let mut service = SurveyService::new(config(Parallelism::fixed(4)), tenants());
    service.run(workload).unwrap();
    let blitz = service.tenant_artifact("blitz").expect("tenant artifact");
    let tight = SloSpec {
        max_rejection_fraction: 0.01,
        ..SloSpec::default()
    };
    let verdict = tight.evaluate("blitz", &blitz);
    assert!(
        verdict
            .violations
            .iter()
            .any(|v| v.rule == "ratio.max blitz.rejected_fraction"),
        "{:?}",
        verdict.violations
    );
}

fn drill_manifest() -> RunManifest {
    RunManifest::for_config(
        "overload-drill",
        &serde_json::json!({ "seed": SEED, "arrivals": ARRIVALS }),
    )
    .unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nbhd-overload-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_and_resume_never_double_bills() {
    let (uninterrupted, _) = run(Parallelism::fixed(4));
    let answer_by_key: BTreeMap<(String, u64), _> = uninterrupted
        .responses
        .iter()
        .map(|r| ((r.tenant.clone(), r.request_id), r.presence))
        .collect();
    let manifest = drill_manifest();

    for &after in &[0u64, 3, 9, 17, 100_000] {
        let dir = temp_dir(&format!("kill-{after}"));
        let journal = Journal::create(&dir, &manifest)
            .unwrap()
            .with_kill(KillSchedule::at(after));
        let (workload, _) = storm();
        let mut first = SurveyService::new(config(Parallelism::fixed(4)), tenants())
            .with_checkpoint(Arc::new(journal));
        let outcome = first.run(workload);
        if after >= 100_000 {
            assert!(outcome.is_ok(), "kill point beyond the run must not fire");
        }

        // "restart the process": reopen the run directory, rerun the storm
        let journal = Journal::open(&dir, &manifest).unwrap();
        let (workload, _) = storm();
        let mut second = SurveyService::new(config(Parallelism::fixed(4)), tenants())
            .with_checkpoint(Arc::new(journal));
        let resumed = second.run(workload).unwrap();

        // every arrival decided exactly once
        assert_eq!(
            resumed.responses.len() + resumed.rejections.len(),
            ARRIVALS,
            "after={after}"
        );

        // exactly one journal record per served request, checked on the
        // raw on-disk frames: nothing was billed twice across the crash
        let scan = scan_file(&journal_path(&dir)).unwrap();
        let keys: Vec<&str> = scan
            .records
            .iter()
            .filter(|r| r.kind == RESPONSE_RECORD_KIND)
            .map(|r| r.key.as_str())
            .collect();
        let unique: HashSet<&str> = keys.iter().copied().collect();
        assert_eq!(
            keys.len(),
            unique.len(),
            "after={after}: a response was journaled twice"
        );
        assert_eq!(unique.len(), resumed.responses.len(), "after={after}");

        // replayed answers are journal-faithful: identical to what the
        // uninterrupted run served for the same requests
        for r in resumed.responses.iter().filter(|r| r.provenance.replayed) {
            assert_eq!(
                answer_by_key.get(&(r.tenant.clone(), r.request_id)),
                Some(&r.presence),
                "after={after}: replay of {}#{} diverged",
                r.tenant,
                r.request_id
            );
        }

        // replays bill exactly once and no admitted request is dropped
        for (name, bill) in &resumed.bills {
            assert_eq!(
                bill.admitted + bill.replayed,
                bill.served,
                "tenant {name} after={after}"
            );
        }

        // a completed first run means the resume replays everything and
        // the ledgers agree (tokens exactly; spend to float tolerance,
        // since replay order interleaves the f64 sums differently)
        if let Ok(first_report) = &outcome {
            assert!(resumed.responses.iter().all(|r| r.provenance.replayed));
            for (name, before) in &first_report.bills {
                let after_bill = &resumed.bills[name];
                assert_eq!(
                    (
                        after_bill.served,
                        after_bill.input_tokens,
                        after_bill.output_tokens
                    ),
                    (before.served, before.input_tokens, before.output_tokens),
                    "tenant {name}"
                );
                assert!((after_bill.usd - before.usd).abs() < 1e-9, "tenant {name}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
