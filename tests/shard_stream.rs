//! The streaming sharded data path, exercised across crate boundaries:
//! bounded peak-resident scenes over many regions, order-independent shard
//! merges, and kill/resume mid-shard with byte-identical output.

use std::fs;
use std::sync::Arc;

use nbhd::prelude::*;
use nbhd_core::types::ImageLabels;
use nbhd_core::{
    merge_shard_annotations, QuarantineStage, ShardCoverage, ATTEMPT_RECORD_KIND,
    QUARANTINE_RECORD_KIND,
};
use nbhd_journal::journal_path;
use proptest::prelude::*;

#[test]
fn eight_region_survey_streams_with_bounded_memory() {
    // eight synthetic regions through eight shards: the whole survey
    // completes while no more scenes are ever resident than one shard holds
    let config = SurveyConfig {
        locations: 48,
        ..SurveyConfig::smoke(31)
    }
    .with_regions(RegionSet::synthetic_grid(8, 31));
    let outcome =
        run_sharded(&config, ShardPlan::new(8).unwrap(), None, None).expect("8-region run");

    let total = outcome.survey().images().len();
    let largest = *outcome.shard_images().iter().max().unwrap();
    assert!(total > 0, "the survey must produce images");
    assert!(
        largest < total,
        "eight shards must each hold a strict subset ({largest} of {total})"
    );
    assert!(
        outcome.peak_resident_scenes() <= largest,
        "peak resident {} exceeds the largest shard's {largest} scenes",
        outcome.peak_resident_scenes()
    );
    // every region contributed points: the sample the run drew from spans
    // all eight, and the shards partition it completely
    let sample = SurveySample::draw_regions(
        &config.regions,
        config.locations,
        config.network_scale,
        config.seed,
    )
    .unwrap();
    let counties: std::collections::HashSet<&str> =
        sample.points().iter().map(|p| p.county.as_str()).collect();
    assert_eq!(
        counties.len(),
        8,
        "all eight regions must appear in the drawn sample: {counties:?}"
    );
    let sharded_points: usize = (0..8)
        .map(|s| sample.shard_points(&ShardPlan::new(8).unwrap(), s).len())
        .sum();
    assert_eq!(sharded_points, sample.points().len());
}

#[test]
fn sharded_kill_resume_is_byte_identical_mid_shard() {
    // kill the journaled sharded run after a handful of records — mid-shard,
    // before any shard completes — then resume from the same directory and
    // require the merge, billing, and fee bits of an uninterrupted run
    let config = SurveyConfig::smoke(57);
    let plan = ShardPlan::new(4).unwrap();
    let fresh = run_sharded(&config, plan, None, None).expect("uninterrupted run");
    let manifest = RunManifest::for_config("shard-stream", &config).unwrap();

    for &after in &[0u64, 3, 11, 29] {
        let dir = std::env::temp_dir().join(format!("nbhd-shard-kill-{after}"));
        let _ = fs::remove_dir_all(&dir);

        let journal = Journal::create(&dir, &manifest)
            .unwrap()
            .with_kill(KillSchedule::at(after));
        let first = run_sharded(&config, plan, Some(Arc::new(journal)), None);
        if let Ok(outcome) = &first {
            // the kill point was beyond the journal's record count
            assert_eq!(outcome.survey().dataset(), fresh.survey().dataset());
        }

        let journal = Journal::open(&dir, &manifest).unwrap();
        let resumed = run_sharded(&config, plan, Some(Arc::new(journal)), None).unwrap();
        assert_eq!(
            resumed.survey().dataset(),
            fresh.survey().dataset(),
            "kill at {after}: resumed merge must be byte-identical"
        );
        assert_eq!(
            resumed.billed_images(),
            fresh.billed_images(),
            "kill at {after}"
        );
        assert_eq!(
            resumed.fees_usd().to_bits(),
            fresh.fees_usd().to_bits(),
            "kill at {after}: fees must fold to the same bits"
        );

        // no capture was journaled twice across the two processes
        let scan = nbhd_journal::scan_file(&journal_path(&dir)).unwrap();
        let capture_keys: Vec<&str> = scan
            .records
            .iter()
            .filter(|r| r.kind == nbhd_core::CAPTURE_RECORD_KIND)
            .map(|r| r.key.as_str())
            .collect();
        let unique: std::collections::HashSet<&str> = capture_keys.iter().copied().collect();
        assert_eq!(
            capture_keys.len(),
            unique.len(),
            "kill at {after}: a capture was journaled twice"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn supervised_poison_run_has_schedule_independent_coverage() {
    // the same poison under serial and 4-worker execution must produce the
    // same partial dataset and a byte-identical coverage report: what got
    // covered is a property of the data, never of the schedule
    let config = SurveyConfig {
        locations: 16,
        ..SurveyConfig::smoke(73)
    };
    let plan = ShardPlan::new(3).unwrap();
    let poison = PoisonSchedule::new(config.seed)
        .with_panic_rate(0.25)
        .with_corrupt_rate(0.25);
    let policy = SupervisePolicy::default();

    let serial_cfg = SurveyConfig {
        parallelism: Parallelism::serial(),
        ..config.clone()
    };
    let par_cfg = SurveyConfig {
        parallelism: Parallelism::fixed(4),
        ..config.clone()
    };
    let serial = run_supervised(&serial_cfg, plan, policy, Some(poison), None, None).unwrap();
    let par = run_supervised(&par_cfg, plan, policy, Some(poison), None, None).unwrap();

    let report = serial.survey().coverage().expect("coverage report");
    assert!(report.quarantined_count() > 0, "poison must bite");
    assert!(report.fraction() < 1.0);
    assert_eq!(
        serde_json::to_vec(report).unwrap(),
        serde_json::to_vec(par.survey().coverage().unwrap()).unwrap(),
        "coverage reports must be byte-identical across schedules"
    );
    assert_eq!(serial.survey().dataset(), par.survey().dataset());
}

#[test]
fn supervised_kill_resume_replays_quarantine_at_every_record() {
    // kill the supervised journaled run at every record boundary and resume:
    // the dataset, billing, coverage report, and the quarantine journal
    // itself must come out identical to an uninterrupted run, and no
    // quarantined location may ever be re-attempted
    let config = SurveyConfig {
        locations: 12,
        ..SurveyConfig::smoke(74)
    };
    let plan = ShardPlan::new(2).unwrap();
    let poison = PoisonSchedule::new(config.seed)
        .with_panic_rate(0.3)
        .with_corrupt_rate(0.2);
    let policy = SupervisePolicy::default();
    let manifest = RunManifest::for_config("supervised-stream", &config).unwrap();

    // the uninterrupted journaled run is the reference
    let ref_dir = std::env::temp_dir().join("nbhd-supervise-ref");
    let _ = fs::remove_dir_all(&ref_dir);
    let journal = Journal::create(&ref_dir, &manifest).unwrap();
    let fresh = run_supervised(
        &config,
        plan,
        policy,
        Some(poison),
        Some(Arc::new(journal)),
        None,
    )
    .unwrap();
    let ref_scan = nbhd_journal::scan_file(&journal_path(&ref_dir)).unwrap();
    let total = ref_scan.records.len() as u64;
    let quarantine_journal = |scan: &nbhd_journal::JournalScan| -> Vec<(String, String)> {
        scan.records
            .iter()
            .filter(|r| r.kind == QUARANTINE_RECORD_KIND)
            .map(|r| (r.key.clone(), r.payload.to_string()))
            .collect()
    };
    let ref_quarantine = quarantine_journal(&ref_scan);
    let report = fresh.survey().coverage().expect("coverage report");
    assert!(!ref_quarantine.is_empty(), "poison must bite");
    assert_eq!(ref_quarantine.len(), report.quarantined_count());

    // attempt-ledger honesty: the raw journal holds exactly `attempts`
    // attempt records for every quarantined location
    for record in report.quarantine_records() {
        let key = record.location.0.to_string();
        let logged = ref_scan
            .records
            .iter()
            .filter(|r| r.kind == ATTEMPT_RECORD_KIND && r.key == key)
            .count();
        assert_eq!(logged as u32, record.attempts, "location {}", record.location);
    }
    fs::remove_dir_all(&ref_dir).unwrap();

    for after in 0..total {
        let dir = std::env::temp_dir().join(format!("nbhd-supervise-kill-{after}"));
        let _ = fs::remove_dir_all(&dir);
        let journal = Journal::create(&dir, &manifest)
            .unwrap()
            .with_kill(KillSchedule::at(after));
        let _ = run_supervised(
            &config,
            plan,
            policy,
            Some(poison),
            Some(Arc::new(journal)),
            None,
        );

        let journal = Journal::open(&dir, &manifest).unwrap();
        let resumed = run_supervised(
            &config,
            plan,
            policy,
            Some(poison),
            Some(Arc::new(journal)),
            None,
        )
        .unwrap();
        assert_eq!(
            resumed.survey().dataset(),
            fresh.survey().dataset(),
            "kill at {after}: resumed dataset must be byte-identical"
        );
        assert_eq!(
            serde_json::to_vec(resumed.survey().coverage().unwrap()).unwrap(),
            serde_json::to_vec(report).unwrap(),
            "kill at {after}: resumed coverage must be byte-identical"
        );
        assert_eq!(resumed.billed_images(), fresh.billed_images(), "kill at {after}");
        assert_eq!(
            resumed.fees_usd().to_bits(),
            fresh.fees_usd().to_bits(),
            "kill at {after}"
        );

        // the quarantine journal across both processes is the reference
        // sequence: each poison location decided once, in the same order
        let scan = nbhd_journal::scan_file(&journal_path(&dir)).unwrap();
        assert_eq!(
            quarantine_journal(&scan),
            ref_quarantine,
            "kill at {after}: quarantine journal must replay, not re-execute"
        );
        // and the attempt ledger never exceeds the budget for any location
        for record in report.quarantine_records() {
            let key = record.location.0.to_string();
            let logged = scan
                .records
                .iter()
                .filter(|r| r.kind == ATTEMPT_RECORD_KIND && r.key == key)
                .count();
            assert_eq!(
                logged as u32, record.attempts,
                "kill at {after}: location {} was re-attempted",
                record.location
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Builds a deterministic batch of labels from `(location, heading index)`
/// pairs, for exercising the merge in isolation.
fn labels_from(pairs: &[(u64, usize)]) -> Vec<ImageLabels> {
    pairs
        .iter()
        .map(|&(loc, h)| {
            ImageLabels::with_objects(
                ImageId::new(LocationId(loc), Heading::ALL[h % Heading::ALL.len()]),
                Vec::new(),
            )
        })
        .collect()
}

/// Strategy for a quarantine cause with a small deterministic payload.
fn cause_strategy() -> impl Strategy<Value = QuarantineCause> {
    prop_oneof![
        "[a-z]{0,8}".prop_map(QuarantineCause::Panic),
        "[a-z]{0,8}".prop_map(QuarantineCause::Corrupt),
        "[a-z]{0,8}".prop_map(QuarantineCause::Service),
    ]
}

/// Strategy for one internally-consistent shard coverage: planned is the
/// sum of completed, quarantined, and skipped.
fn shard_coverage_strategy() -> impl Strategy<Value = ShardCoverage> {
    (
        0usize..30,
        proptest::collection::vec((0u64..1000, 1u32..5, cause_strategy()), 0..5),
        proptest::collection::vec(0u64..1000, 0..4),
        proptest::bool::ANY,
    )
        .prop_map(|(completed, quars, skipped, timed_out)| {
            let quarantined: Vec<QuarantineRecord> = quars
                .into_iter()
                .map(|(loc, attempts, cause)| QuarantineRecord {
                    location: LocationId(loc),
                    stage: QuarantineStage::Capture,
                    attempts,
                    cause,
                })
                .collect();
            let skipped: Vec<LocationId> = skipped.into_iter().map(LocationId).collect();
            ShardCoverage {
                shard: 0,
                planned_locations: completed + quarantined.len() + skipped.len(),
                completed_locations: completed,
                completed_units: completed * 4,
                quarantined,
                skipped,
                outcome: if timed_out {
                    ShardOutcome::TimedOut
                } else {
                    ShardOutcome::Completed
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // coverage aggregation algebra: report totals are exactly the per-shard
    // sums, the fraction is honest, and none of it depends on the order
    // shards arrive in
    #[test]
    fn coverage_report_totals_are_sums_and_shard_order_invariant(
        mut shards in proptest::collection::vec(shard_coverage_strategy(), 0..8),
        rotate in 0usize..8,
    ) {
        for (i, s) in shards.iter_mut().enumerate() {
            s.shard = i;
        }
        let report = CoverageReport { shards: shards.clone(), regions: Vec::new() };

        let planned: usize = shards.iter().map(|s| s.planned_locations).sum();
        let completed: usize = shards.iter().map(|s| s.completed_locations).sum();
        let quarantined: usize = shards.iter().map(|s| s.quarantined.len()).sum();
        let skipped: usize = shards.iter().map(|s| s.skipped.len()).sum();
        let retries: u64 = shards
            .iter()
            .flat_map(|s| s.quarantined.iter())
            .map(|r| u64::from(r.attempts - 1))
            .sum();
        prop_assert_eq!(report.planned_locations(), planned);
        prop_assert_eq!(report.completed_locations(), completed);
        prop_assert_eq!(report.quarantined_count(), quarantined);
        prop_assert_eq!(report.skipped_count(), skipped);
        prop_assert_eq!(report.retries(), retries);
        prop_assert_eq!(planned, completed + quarantined + skipped);

        // the fraction is honest: completed over planned, 1.0 on empty
        if planned == 0 {
            prop_assert_eq!(report.fraction(), 1.0);
        } else {
            let expect = completed as f64 / planned as f64;
            prop_assert!((report.fraction() - expect).abs() < 1e-12);
        }

        // every quarantine lands in exactly one cause bucket
        prop_assert_eq!(report.cause_counts().values().sum::<usize>(), quarantined);

        // shard arrival order must not change any aggregate
        let mut rotated = shards.clone();
        if !rotated.is_empty() {
            rotated.rotate_left(rotate % rotated.len());
        }
        let shuffled = CoverageReport { shards: rotated, regions: Vec::new() };
        prop_assert_eq!(shuffled.planned_locations(), planned);
        prop_assert_eq!(shuffled.completed_locations(), completed);
        prop_assert_eq!(shuffled.quarantined_count(), quarantined);
        prop_assert_eq!(shuffled.skipped_count(), skipped);
        prop_assert_eq!(shuffled.retries(), retries);
        prop_assert_eq!(shuffled.cause_counts(), report.cause_counts());
        prop_assert_eq!(shuffled.timed_out_shards(), report.timed_out_shards());
        prop_assert!((shuffled.fraction() - report.fraction()).abs() < 1e-12);

        // rendering rows is 1:1 with shards
        prop_assert_eq!(report.rows().len(), shards.len());
    }

    // merge algebra: the merged dataset is a pure function of the multiset
    // of shard annotations — invariant to batch order and to how the units
    // are partitioned into batches
    #[test]
    fn shard_merge_is_invariant_to_batch_order_and_partitioning(
        pairs in proptest::collection::btree_set((0u64..500, 0usize..4), 0..60),
        cuts in proptest::collection::vec(0usize..60, 0..5),
        rotate in 0usize..5,
    ) {
        let pairs: Vec<(u64, usize)> = pairs.into_iter().collect();
        let units = labels_from(&pairs);

        // partition A: contiguous slices at the drawn cut points
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(units.len())).collect();
        bounds.sort_unstable();
        let mut batches_a: Vec<Vec<ImageLabels>> = Vec::new();
        let mut start = 0;
        for &b in &bounds {
            batches_a.push(units[start..b].to_vec());
            start = b;
        }
        batches_a.push(units[start..].to_vec());

        // partition B: the same batches, rotated (different arrival order)
        let mut batches_b = batches_a.clone();
        if !batches_b.is_empty() {
            batches_b.rotate_left(rotate % batches_b.len());
        }

        // partition C: round-robin — an entirely different partitioning of
        // the same multiset
        let lanes = bounds.len() + 1;
        let mut batches_c: Vec<Vec<ImageLabels>> = vec![Vec::new(); lanes];
        for (i, unit) in units.iter().cloned().enumerate() {
            batches_c[i % lanes].push(unit);
        }

        let merged_a = merge_shard_annotations(batches_a);
        let merged_b = merge_shard_annotations(batches_b);
        let merged_c = merge_shard_annotations(batches_c);
        prop_assert_eq!(&merged_a, &merged_b);
        prop_assert_eq!(&merged_a, &merged_c);

        // the merge is sorted by image id and loses nothing
        prop_assert_eq!(merged_a.len(), units.len());
        prop_assert!(merged_a.windows(2).all(|w| w[0].image <= w[1].image));
    }

    // shard assignment is a pure function of location: every plan covers
    // every location exactly once, so shards partition any point set
    #[test]
    fn shard_assignment_partitions_locations(
        locs in proptest::collection::btree_set(0u64..10_000, 1..100),
        shards in 1usize..9,
    ) {
        let plan = ShardPlan::new(shards).unwrap();
        for &loc in &locs {
            let shard = plan.assign(LocationId(loc));
            prop_assert!(shard < shards);
            prop_assert_eq!(shard, plan.assign(LocationId(loc)), "assignment must be stable");
        }
    }
}
