//! The streaming sharded data path, exercised across crate boundaries:
//! bounded peak-resident scenes over many regions, order-independent shard
//! merges, and kill/resume mid-shard with byte-identical output.

use std::fs;
use std::sync::Arc;

use nbhd::prelude::*;
use nbhd_core::merge_shard_annotations;
use nbhd_core::types::ImageLabels;
use nbhd_journal::journal_path;
use proptest::prelude::*;

#[test]
fn eight_region_survey_streams_with_bounded_memory() {
    // eight synthetic regions through eight shards: the whole survey
    // completes while no more scenes are ever resident than one shard holds
    let config = SurveyConfig {
        locations: 48,
        ..SurveyConfig::smoke(31)
    }
    .with_regions(RegionSet::synthetic_grid(8, 31));
    let outcome =
        run_sharded(&config, ShardPlan::new(8).unwrap(), None, None).expect("8-region run");

    let total = outcome.survey().images().len();
    let largest = *outcome.shard_images().iter().max().unwrap();
    assert!(total > 0, "the survey must produce images");
    assert!(
        largest < total,
        "eight shards must each hold a strict subset ({largest} of {total})"
    );
    assert!(
        outcome.peak_resident_scenes() <= largest,
        "peak resident {} exceeds the largest shard's {largest} scenes",
        outcome.peak_resident_scenes()
    );
    // every region contributed points: the sample the run drew from spans
    // all eight, and the shards partition it completely
    let sample = SurveySample::draw_regions(
        &config.regions,
        config.locations,
        config.network_scale,
        config.seed,
    )
    .unwrap();
    let counties: std::collections::HashSet<&str> =
        sample.points().iter().map(|p| p.county.as_str()).collect();
    assert_eq!(
        counties.len(),
        8,
        "all eight regions must appear in the drawn sample: {counties:?}"
    );
    let sharded_points: usize = (0..8)
        .map(|s| sample.shard_points(&ShardPlan::new(8).unwrap(), s).len())
        .sum();
    assert_eq!(sharded_points, sample.points().len());
}

#[test]
fn sharded_kill_resume_is_byte_identical_mid_shard() {
    // kill the journaled sharded run after a handful of records — mid-shard,
    // before any shard completes — then resume from the same directory and
    // require the merge, billing, and fee bits of an uninterrupted run
    let config = SurveyConfig::smoke(57);
    let plan = ShardPlan::new(4).unwrap();
    let fresh = run_sharded(&config, plan, None, None).expect("uninterrupted run");
    let manifest = RunManifest::for_config("shard-stream", &config).unwrap();

    for &after in &[0u64, 3, 11, 29] {
        let dir = std::env::temp_dir().join(format!("nbhd-shard-kill-{after}"));
        let _ = fs::remove_dir_all(&dir);

        let journal = Journal::create(&dir, &manifest)
            .unwrap()
            .with_kill(KillSchedule::at(after));
        let first = run_sharded(&config, plan, Some(Arc::new(journal)), None);
        if let Ok(outcome) = &first {
            // the kill point was beyond the journal's record count
            assert_eq!(outcome.survey().dataset(), fresh.survey().dataset());
        }

        let journal = Journal::open(&dir, &manifest).unwrap();
        let resumed = run_sharded(&config, plan, Some(Arc::new(journal)), None).unwrap();
        assert_eq!(
            resumed.survey().dataset(),
            fresh.survey().dataset(),
            "kill at {after}: resumed merge must be byte-identical"
        );
        assert_eq!(
            resumed.billed_images(),
            fresh.billed_images(),
            "kill at {after}"
        );
        assert_eq!(
            resumed.fees_usd().to_bits(),
            fresh.fees_usd().to_bits(),
            "kill at {after}: fees must fold to the same bits"
        );

        // no capture was journaled twice across the two processes
        let scan = nbhd_journal::scan_file(&journal_path(&dir)).unwrap();
        let capture_keys: Vec<&str> = scan
            .records
            .iter()
            .filter(|r| r.kind == nbhd_core::CAPTURE_RECORD_KIND)
            .map(|r| r.key.as_str())
            .collect();
        let unique: std::collections::HashSet<&str> = capture_keys.iter().copied().collect();
        assert_eq!(
            capture_keys.len(),
            unique.len(),
            "kill at {after}: a capture was journaled twice"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Builds a deterministic batch of labels from `(location, heading index)`
/// pairs, for exercising the merge in isolation.
fn labels_from(pairs: &[(u64, usize)]) -> Vec<ImageLabels> {
    pairs
        .iter()
        .map(|&(loc, h)| {
            ImageLabels::with_objects(
                ImageId::new(LocationId(loc), Heading::ALL[h % Heading::ALL.len()]),
                Vec::new(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // merge algebra: the merged dataset is a pure function of the multiset
    // of shard annotations — invariant to batch order and to how the units
    // are partitioned into batches
    #[test]
    fn shard_merge_is_invariant_to_batch_order_and_partitioning(
        pairs in proptest::collection::btree_set((0u64..500, 0usize..4), 0..60),
        cuts in proptest::collection::vec(0usize..60, 0..5),
        rotate in 0usize..5,
    ) {
        let pairs: Vec<(u64, usize)> = pairs.into_iter().collect();
        let units = labels_from(&pairs);

        // partition A: contiguous slices at the drawn cut points
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(units.len())).collect();
        bounds.sort_unstable();
        let mut batches_a: Vec<Vec<ImageLabels>> = Vec::new();
        let mut start = 0;
        for &b in &bounds {
            batches_a.push(units[start..b].to_vec());
            start = b;
        }
        batches_a.push(units[start..].to_vec());

        // partition B: the same batches, rotated (different arrival order)
        let mut batches_b = batches_a.clone();
        if !batches_b.is_empty() {
            batches_b.rotate_left(rotate % batches_b.len());
        }

        // partition C: round-robin — an entirely different partitioning of
        // the same multiset
        let lanes = bounds.len() + 1;
        let mut batches_c: Vec<Vec<ImageLabels>> = vec![Vec::new(); lanes];
        for (i, unit) in units.iter().cloned().enumerate() {
            batches_c[i % lanes].push(unit);
        }

        let merged_a = merge_shard_annotations(batches_a);
        let merged_b = merge_shard_annotations(batches_b);
        let merged_c = merge_shard_annotations(batches_c);
        prop_assert_eq!(&merged_a, &merged_b);
        prop_assert_eq!(&merged_a, &merged_c);

        // the merge is sorted by image id and loses nothing
        prop_assert_eq!(merged_a.len(), units.len());
        prop_assert!(merged_a.windows(2).all(|w| w[0].image <= w[1].image));
    }

    // shard assignment is a pure function of location: every plan covers
    // every location exactly once, so shards partition any point set
    #[test]
    fn shard_assignment_partitions_locations(
        locs in proptest::collection::btree_set(0u64..10_000, 1..100),
        shards in 1usize..9,
    ) {
        let plan = ShardPlan::new(shards).unwrap();
        for &loc in &locs {
            let shard = plan.assign(LocationId(loc));
            prop_assert!(shard < shards);
            prop_assert_eq!(shard, plan.assign(LocationId(loc)), "assignment must be stable");
        }
    }
}
