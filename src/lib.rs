//! `nbhd` — decoding neighborhood environments with (simulated) large
//! language models.
//!
//! This is the umbrella crate of the workspace: it re-exports the public
//! façade from [`nbhd_core`] so applications can depend on a single crate.
//! See the repository README for the architecture overview and the DESIGN
//! document for the per-experiment index.
//!
//! # Examples
//!
//! ```
//! use nbhd::prelude::*;
//!
//! // Build a tiny survey dataset and inspect its class balance.
//! let config = SurveyConfig::smoke(7);
//! let dataset = SurveyPipeline::new(config).run().unwrap();
//! assert!(dataset.images().len() > 0);
//! ```

pub use nbhd_core::*;

/// The long-running multi-tenant serving layer: admission control, load
/// shedding, graceful degradation tiers, and overload chaos drills.
pub use nbhd_serve as serve;
