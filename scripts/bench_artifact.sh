#!/usr/bin/env bash
# Flight-recorder bench gate: run the paper-table harness twice at a small
# deterministic scale, self-diff the two run artifacts (the deterministic
# surface must be byte-stable across identical-seed runs), then diff the
# fresh artifact against the committed baseline BENCH_paper_tables.json.
# Each run also appends its wall-clock seconds to target/BENCH_walltime.tsv
# for trend tracking, and the self-diff doubles as an absolute budget gate
# (run_diff --budget) at 2x the fresh run's observed ceilings.
#
# The committed baseline starts life as a bootstrap sentinel (name
# "bootstrap"): the first run on a machine with a working toolchain
# replaces it with a real artifact — review and commit that file. To
# re-baseline after an intentional perf/shape change:
#
#   REBASELINE=1 ./scripts/bench_artifact.sh
#
# Run from the repository root: ./scripts/bench_artifact.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_paper_tables.json
FRESH=target/BENCH_paper_tables.json
RERUN=target/BENCH_paper_tables.rerun.json
SCALE="${NBHD_SCALE:-smoke}"
SEED="${NBHD_SEED:-2025}"
# t2 keeps the gate fast: one LLM experiment on top of the survey build.
ARGS="${NBHD_BENCH_ARGS:-t2}"

echo "==> bench artifact: scale=$SCALE seed=$SEED experiments=$ARGS"
BENCH_STARTED=$(date +%s)
NBHD_SCALE="$SCALE" NBHD_SEED="$SEED" NBHD_ARTIFACT="$FRESH" \
    cargo bench -q -p nbhd-bench --bench paper_tables -- $ARGS >/dev/null
BENCH_WALL_S=$(( $(date +%s) - BENCH_STARTED ))
NBHD_SCALE="$SCALE" NBHD_SEED="$SEED" NBHD_ARTIFACT="$RERUN" \
    cargo bench -q -p nbhd-bench --bench paper_tables -- $ARGS >/dev/null

# Wall time rides alongside the artifact for trend tracking: the artifact's
# virtual timeline is machine-independent, so real elapsed seconds are the
# one signal it cannot carry. Appended, not overwritten -- each row is one
# run on this machine.
WALLTIME_LOG=target/BENCH_walltime.tsv
mkdir -p target
[ -f "$WALLTIME_LOG" ] || printf 'utc\tscale\tseed\texperiments\twall_s\n' >"$WALLTIME_LOG"
printf '%s\t%s\t%s\t%s\t%s\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$SCALE" "$SEED" "$ARGS" "$BENCH_WALL_S" >>"$WALLTIME_LOG"
echo "==> wall time: ${BENCH_WALL_S}s (trend log: $WALLTIME_LOG)"

echo "==> self-diff: identical seeds must produce zero regressions"
# One invocation applies both gates: the relative diff between the two
# runs, and an absolute budget derived from the fresh run at 2x headroom
# (so the rerun must also land inside the fresh run's perf envelope).
cargo run -q -p nbhd-bench --bin budget_gate -- \
    derive --headroom 2.0 --out target/BENCH_budget.json "$FRESH" >/dev/null
cargo run -q -p nbhd-bench --bin run_diff -- \
    --budget target/BENCH_budget.json "$FRESH" "$RERUN"

# The serving layer exports the same artifact shape (admission-wait and
# queue-depth histograms, tier counters): run the overload drill twice
# and self-diff — the serve decision surface must be seed-stable too.
SERVE_FRESH=target/BENCH_overload_drill.json
SERVE_RERUN=target/BENCH_overload_drill.rerun.json
echo "==> serve artifact: overload drill self-diff"
NBHD_ARTIFACT="$SERVE_FRESH" cargo run -q --example overload_drill >/dev/null
NBHD_ARTIFACT="$SERVE_RERUN" cargo run -q --example overload_drill >/dev/null
cargo run -q -p nbhd-bench --bin run_diff -- "$SERVE_FRESH" "$SERVE_RERUN"

# The sharded data path exports the same artifact shape (shard wall-time
# histograms, the peak-resident gauge, shard counters): run the two-shard
# region drill twice and self-diff — the shard decision surface must be
# seed-stable too.
SHARD_FRESH=target/BENCH_region_shards.json
SHARD_RERUN=target/BENCH_region_shards.rerun.json
echo "==> shard artifact: region shards self-diff"
NBHD_ARTIFACT="$SHARD_FRESH" cargo run -q --example region_shards >/dev/null
NBHD_ARTIFACT="$SHARD_RERUN" cargo run -q --example region_shards >/dev/null
cargo run -q -p nbhd-bench --bin run_diff -- "$SHARD_FRESH" "$SHARD_RERUN"

# A poisoned run's artifact (quarantine counters, shard-outcome counters,
# the coverage gauge) is part of the deterministic surface too: run the
# poison drill twice and self-diff — partial coverage must be seed-stable,
# not an artifact of scheduling.
POISON_FRESH=target/BENCH_poison_drill.json
POISON_RERUN=target/BENCH_poison_drill.rerun.json
echo "==> poison artifact: poison drill self-diff"
NBHD_ARTIFACT="$POISON_FRESH" cargo run -q --example poison_drill >/dev/null
NBHD_ARTIFACT="$POISON_RERUN" cargo run -q --example poison_drill >/dev/null
cargo run -q -p nbhd-bench --bin run_diff -- "$POISON_FRESH" "$POISON_RERUN"

# The distributed path must be seed-stable end to end: run the two-shard
# flow twice (shards as real subprocesses each time), merge both, and
# self-diff the merged artifacts — the merge algebra must add nothing of
# its own to the deterministic surface.
DIST_DIR=target/BENCH_distributed
echo "==> distributed artifact: merged two-shard self-diff"
cargo build -q -p nbhd-bench --bin shard_run
SHARD_RUN=target/debug/shard_run
rm -rf "$DIST_DIR" && mkdir -p "$DIST_DIR"
for pass in a b; do
    "$SHARD_RUN" run --shard 0/2 --out "$DIST_DIR/$pass.shard0.json" --seed "$SEED" >/dev/null &
    P0=$!
    "$SHARD_RUN" run --shard 1/2 --out "$DIST_DIR/$pass.shard1.json" --seed "$SEED" >/dev/null &
    P1=$!
    wait "$P0" "$P1"
    "$SHARD_RUN" merge --out "$DIST_DIR/$pass.merged.json" \
        "$DIST_DIR/$pass.shard0.json" "$DIST_DIR/$pass.shard1.json" >/dev/null
done
cargo run -q -p nbhd-bench --bin run_diff -- \
    "$DIST_DIR/a.merged.json" "$DIST_DIR/b.merged.json"

if [ "${REBASELINE:-0}" = "1" ] || [ ! -f "$BASELINE" ] \
    || grep -q '"name": "bootstrap"' "$BASELINE"; then
    cp "$FRESH" "$BASELINE"
    echo "==> baselined $BASELINE from this run -- review and commit it"
else
    echo "==> diff against committed baseline $BASELINE"
    cargo run -q -p nbhd-bench --bin run_diff -- "$BASELINE" "$FRESH"
fi
