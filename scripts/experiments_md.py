#!/usr/bin/env python3
"""Generates EXPERIMENTS.md from a paper_tables bench log.

Usage: python3 scripts/experiments_md.py bench_output.txt > EXPERIMENTS.md
"""
import re
import sys

HEADER = """# EXPERIMENTS — paper vs. measured

Regenerated with `cargo bench -p nbhd-bench --bench paper_tables`
(the log this file was produced from is committed alongside it).
Experiment ids follow DESIGN.md §4. Absolute parity with the paper is not
the goal — the substrates are simulations (DESIGN.md §2) — but every
reported *shape* should hold, and the LLM-side statistics are calibrated
to land close.

Deviations worth calling out:

* **t1 (Table I).** The paper's YOLOv11-Nano reaches mAP50 ≈ 0.99 on real
  imagery with a deep network. Our from-scratch linear-mixture detector
  reaches a substantially lower mAP at benchmark scale. The *ordering*
  the study relies on still holds: the supervised detector is strong on
  the big road classes and the LLM ensemble needs no training at all; we
  record the honest gap below rather than inflating the substrate.
* **f2 / f3 (Figs. 2-3).** Rotation augmentation hurts and noise degrades
  accuracy in our reproduction as in the paper, but with larger magnitudes:
  a linear-mixture detector is more fragile to out-of-distribution training
  frames and to pixel noise than a deep YOLO. The directional-class claim
  (streetlights collapse hardest under rotation) reproduces exactly.
* **f4 (Fig. 4).** The paper's parallel-prompt recalls in Fig. 4 (92/83)
  disagree with its own appendix tables (90/91); we calibrate to the
  tables, so our parallel numbers track the appendix and the
  parallel-beats-sequential gap is the reproduced shape.

"""


def main(path: str) -> None:
    text = open(path).read()
    sections = re.split(r"\n== ", text)
    out = [HEADER]
    for section in sections[1:]:
        title_line, _, body = section.partition("\n")
        m = re.match(r"(\w+): (.*)", title_line)
        if not m:
            continue
        exp_id, title = m.groups()
        if exp_id == "t2":
            out.append(f"## {exp_id} — {title}\n\nQualitative example; see the bench log for the rendered answer grid.\n")
            continue
        rows = re.findall(
            r"^(.*?)\s+(-?\d+\.\d{3})\s+(-?\d+\.\d{3})\s+(\d+\.\d{3})\s*$",
            body.split("paper vs measured")[-1],
            re.M,
        )
        out.append(f"## {exp_id} — {title}\n")
        if rows:
            out.append("| quantity | paper | measured | delta |")
            out.append("|---|---|---|---|")
            for name, paper, measured, delta in rows:
                out.append(f"| {name.strip()} | {paper} | {measured} | {delta} |")
        out.append("")
    summary = re.search(r"# (\d+ experiments, .*)", text)
    if summary:
        out.append(f"\n**Summary:** {summary.group(1)}\n")
    print("\n".join(out))


if __name__ == "__main__":
    main(sys.argv[1])
