#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -p nbhd-journal (fast journal gate)"
cargo test -q -p nbhd-journal

echo "==> cargo test"
cargo test -q

echo "==> crash/resume torture (every kill point, serial + 4 workers)"
cargo test -q --test crash_resume

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench -p nbhd-bench --no-run

echo "==> all checks passed"
