#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -p nbhd-journal (fast journal gate)"
cargo test -q -p nbhd-journal

echo "==> journal_fsck self-test (deep-scan detects injected corruption)"
cargo run -q -p nbhd-bench --bin journal_fsck -- --self-test

echo "==> cargo test -p nbhd-obs (fast observability gate: spans, metrics, summary)"
cargo test -q -p nbhd-obs

echo "==> cargo test -p nbhd-serve (fast serving gate: admission, tiers, storms)"
cargo test -q -p nbhd-serve

echo "==> budget_gate self-test (derived spec holds, 2x slowdown trips the gate)"
cargo run -q -p nbhd-bench --bin budget_gate -- --self-test

echo "==> budget gate (committed BUDGETS.json vs fresh quickstart artifact)"
QS_ARTIFACT=target/quickstart_artifact.json
cargo run -q --example quickstart >/dev/null
if grep -q '"name": "bootstrap"' BUDGETS.json; then
    cargo run -q -p nbhd-bench --bin budget_gate -- \
        derive --headroom 2.0 --out BUDGETS.json "$QS_ARTIFACT"
    echo "==> seeded BUDGETS.json at 2.0x observed ceilings -- review and commit it"
else
    cargo run -q -p nbhd-bench --bin budget_gate -- eval BUDGETS.json "$QS_ARTIFACT"
fi
# the gate must actually bite: a budget tightened to half the observed
# values, evaluated against the very run it came from, has to fail
cargo run -q -p nbhd-bench --bin budget_gate -- \
    derive --headroom 0.5 --out target/budget_violation.json "$QS_ARTIFACT" >/dev/null
if cargo run -q -p nbhd-bench --bin budget_gate -- \
    eval target/budget_violation.json "$QS_ARTIFACT" >target/budget_violation.out; then
    echo "ERROR: a 0.5x-headroom budget passed the run it was derived from" >&2
    exit 1
fi
grep -q 'FAIL:' target/budget_violation.out

echo "==> obs golden snapshots (cost-report alignment + run-summary rendering)"
cargo test -q -p nbhd-client report_golden_output_for_long_names_and_wide_tokens
cargo test -q -p nbhd-eval run_summary_indents_nested_stages_and_marks_wall_metrics

echo "==> flight recorder (artifact round-trip, trace shape, self-diff gate)"
cargo test -q --test flight_recorder

echo "==> shard fast gate (byte-equality vs pipeline, bounded memory, replay)"
cargo test -q -p nbhd-core shard
cargo test -q -p nbhd-detect sharded

echo "==> cargo test"
cargo test -q

echo "==> crash/resume torture (every kill point, serial + 4 workers)"
cargo test -q --test crash_resume

echo "==> shard stream (8-region bounded run, merge algebra, mid-shard kill/resume)"
cargo test -q --test shard_stream

echo "==> poison drill (quarantine, watchdog, coverage honesty under kill/resume)"
cargo run -q --example poison_drill >/dev/null

echo "==> overload drill (storm admission, degradation tiers, kill/resume billing)"
cargo test -q --test overload_drill

echo "==> distributed fast gate (two real shard processes, merge, verify, HTML)"
cargo build -q -p nbhd-bench --bin shard_run
SHARD_RUN=target/debug/shard_run
DIST_DIR=target/distributed_gate
rm -rf "$DIST_DIR" && mkdir -p "$DIST_DIR"
# two shards as genuinely separate OS processes, concurrently
"$SHARD_RUN" run --shard 0/2 --out "$DIST_DIR/shard0.json" --seed 2025 >/dev/null &
SHARD0_PID=$!
"$SHARD_RUN" run --shard 1/2 --out "$DIST_DIR/shard1.json" --seed 2025 >/dev/null &
SHARD1_PID=$!
wait "$SHARD0_PID" "$SHARD1_PID"
"$SHARD_RUN" merge --out "$DIST_DIR/merged.json" \
    "$DIST_DIR/shard0.json" "$DIST_DIR/shard1.json" >/dev/null
"$SHARD_RUN" single --shards 2 --out "$DIST_DIR/single.json" --seed 2025 >/dev/null
"$SHARD_RUN" verify "$DIST_DIR/merged.json" "$DIST_DIR/single.json"
cargo run -q -p nbhd-bench --bin run_diff -- \
    "$DIST_DIR/single.json" "$DIST_DIR/merged.json"
"$SHARD_RUN" report --out "$DIST_DIR/report.html" "$DIST_DIR/merged.json" >/dev/null
grep -q '</html>' "$DIST_DIR/report.html"
cargo test -q --test distributed

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench -p nbhd-bench --no-run

echo "==> bench artifact gate (self-diff + committed baseline)"
./scripts/bench_artifact.sh

echo "==> all checks passed"
