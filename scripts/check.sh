#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -p nbhd-journal (fast journal gate)"
cargo test -q -p nbhd-journal

echo "==> journal_fsck self-test (deep-scan detects injected corruption)"
cargo run -q -p nbhd-bench --bin journal_fsck -- --self-test

echo "==> cargo test -p nbhd-obs (fast observability gate: spans, metrics, summary)"
cargo test -q -p nbhd-obs

echo "==> cargo test -p nbhd-serve (fast serving gate: admission, tiers, storms)"
cargo test -q -p nbhd-serve

echo "==> obs golden snapshots (cost-report alignment + run-summary rendering)"
cargo test -q -p nbhd-client report_golden_output_for_long_names_and_wide_tokens
cargo test -q -p nbhd-eval run_summary_indents_nested_stages_and_marks_wall_metrics

echo "==> flight recorder (artifact round-trip, trace shape, self-diff gate)"
cargo test -q --test flight_recorder

echo "==> shard fast gate (byte-equality vs pipeline, bounded memory, replay)"
cargo test -q -p nbhd-core shard
cargo test -q -p nbhd-detect sharded

echo "==> cargo test"
cargo test -q

echo "==> crash/resume torture (every kill point, serial + 4 workers)"
cargo test -q --test crash_resume

echo "==> shard stream (8-region bounded run, merge algebra, mid-shard kill/resume)"
cargo test -q --test shard_stream

echo "==> poison drill (quarantine, watchdog, coverage honesty under kill/resume)"
cargo run -q --example poison_drill >/dev/null

echo "==> overload drill (storm admission, degradation tiers, kill/resume billing)"
cargo test -q --test overload_drill

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench -p nbhd-bench --no-run

echo "==> bench artifact gate (self-diff + committed baseline)"
./scripts/bench_artifact.sh

echo "==> all checks passed"
